// Package netem provides the in-memory network the simulations run on: a
// virtual clock, a registry of DNS-speaking nodes addressed by IP, and a
// synchronous exchange primitive whose latency is derived from the
// geographic distance between the endpoints. It lets thousands of
// resolvers, forwarders and authoritative servers interact without
// sockets while keeping time and latency semantics realistic.
package netem

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"ecsdns/internal/dnswire"
	"ecsdns/internal/geo"
)

// Clock is a virtual clock. Simulations advance it explicitly; nothing in
// this module reads the wall clock on a simulated path.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// SimStart is the epoch simulations start at by default. Its specific
// value is irrelevant; it is fixed so runs are reproducible.
var SimStart = time.Date(2019, time.March, 1, 0, 0, 0, 0, time.UTC)

// NewClock returns a clock set to start.
func NewClock(start time.Time) *Clock {
	return &Clock{now: start}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d (negative d is ignored).
func (c *Clock) Advance(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Set jumps the clock to t if t is in the future.
func (c *Clock) Set(t time.Time) {
	c.mu.Lock()
	if t.After(c.now) {
		c.now = t
	}
	c.mu.Unlock()
}

// Handler is a DNS-speaking simulation node. Handlers may issue their own
// exchanges on the same network (a resolver querying an authority) from
// inside HandleDNS.
type Handler interface {
	HandleDNS(from netip.Addr, query *dnswire.Message) *dnswire.Message
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from netip.Addr, query *dnswire.Message) *dnswire.Message

// HandleDNS implements Handler.
func (f HandlerFunc) HandleDNS(from netip.Addr, query *dnswire.Message) *dnswire.Message {
	return f(from, query)
}

// Exchange errors.
var (
	ErrNoRoute = errors.New("netem: no node at destination address")
	ErrDropped = errors.New("netem: node dropped the query")
	ErrLost    = errors.New("netem: packet lost in transit")
)

// Network is the in-memory Internet fabric.
type Network struct {
	world *geo.Internet
	clock *Clock

	mu    sync.RWMutex
	nodes map[netip.Addr]Handler
	// place overrides geolocation for addresses outside the synthetic
	// address plan (e.g. anycast service addresses).
	place map[netip.Addr]geo.Location

	// WireTap, when non-nil, observes every exchange after it completes.
	WireTap func(ev Event)

	// Fault injection (see faults.go): a global plan plus per-node
	// plans, each with its own seeded RNG, and the counters they feed.
	// faultsActive keeps the no-fault hot path to one atomic load.
	fmu          sync.Mutex
	globalFaults *faultState
	nodeFaults   map[netip.Addr]*faultState
	fstats       FaultStats
	faultsActive atomic.Bool

	// CountExchanges tracks the total number of exchanges for load
	// accounting.
	counter struct {
		sync.Mutex
		n int64
	}
}

// Event is one completed exchange, as seen by the wire tap.
type Event struct {
	From, To netip.Addr
	Query    *dnswire.Message
	Response *dnswire.Message
	RTT      time.Duration
	Time     time.Time
}

// New creates a network over the given world with its own virtual clock.
func New(world *geo.Internet) *Network {
	return &Network{
		world: world,
		clock: NewClock(SimStart),
		nodes: make(map[netip.Addr]Handler),
		place: make(map[netip.Addr]geo.Location),
	}
}

// Clock returns the network's virtual clock.
func (n *Network) Clock() *Clock { return n.clock }

// World returns the underlying topology.
func (n *Network) World() *geo.Internet { return n.world }

// Register attaches a handler at addr. Registering nil detaches.
func (n *Network) Register(addr netip.Addr, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if h == nil {
		delete(n.nodes, addr)
		return
	}
	n.nodes[addr] = h
}

// Place pins an explicit location for addr, overriding (or supplying, for
// out-of-plan addresses) its geolocation.
func (n *Network) Place(addr netip.Addr, loc geo.Location) {
	n.mu.Lock()
	n.place[addr] = loc
	n.mu.Unlock()
}

// LocationOf resolves the effective location of addr: explicit placement
// first, then the synthetic address plan. ok is false when neither knows
// the address.
func (n *Network) LocationOf(addr netip.Addr) (geo.Location, bool) {
	n.mu.RLock()
	loc, ok := n.place[addr]
	n.mu.RUnlock()
	if ok {
		return loc, true
	}
	return n.world.Locate(addr)
}

// RTT returns the modeled round-trip time between two addresses. Unknown
// endpoints contribute only the base RTT.
func (n *Network) RTT(a, b netip.Addr) time.Duration {
	la, oka := n.LocationOf(a)
	lb, okb := n.LocationOf(b)
	if !oka || !okb {
		return time.Duration(geo.BaseRTTMillis * float64(time.Millisecond))
	}
	ms := geo.RTTMillis(la, lb)
	return time.Duration(ms * float64(time.Millisecond))
}

// Exchange sends query from `from` to `to` over the (emulated) UDP
// path, advances the virtual clock by the path RTT, and returns the
// response along with that RTT. A nil response from the handler maps to
// ErrDropped, modeling the silent drops the paper describes for buggy
// nameservers; injected loss (and blackout windows) map to ErrLost
// after a full timeout-equivalent delay, and the response may carry an
// injected truncation, SERVFAIL, corruption, or size fault (payload
// inflation against the query's advertised EDNS buffer, fragment loss)
// per the installed FaultPlans (see faults.go).
func (n *Network) Exchange(from, to netip.Addr, query *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	return n.exchange(from, to, query, false)
}

// ExchangeTCP is Exchange over the (emulated) stream transport: size
// faults, injected truncation, and ID corruption do not apply — TCP
// carries any response intact — while loss, blackouts, latency, and
// SERVFAIL injection still do. It is the final rung of the
// truncation→fragmentation→TCP fallback ladder.
func (n *Network) ExchangeTCP(from, to netip.Addr, query *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	return n.exchange(from, to, query, true)
}

func (n *Network) exchange(from, to netip.Addr, query *dnswire.Message, tcp bool) (*dnswire.Message, time.Duration, error) {
	n.mu.RLock()
	h, ok := n.nodes[to]
	n.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrNoRoute, to)
	}
	faulted := n.faultsActive.Load()
	var extra time.Duration
	if faulted {
		lost, cost, add := n.forwardFaults(to)
		if lost {
			// The sender burns a timeout waiting for the lost datagram.
			n.clock.Advance(cost)
			n.counter.Lock()
			n.counter.n++
			n.counter.Unlock()
			return nil, cost, ErrLost
		}
		extra = add
	}
	rtt := n.RTT(from, to) + extra
	// One-way trip before the handler runs, the return trip after, so
	// nested exchanges made by the handler observe a sensible clock.
	n.clock.Advance(rtt / 2)
	resp := h.HandleDNS(from, query)
	n.clock.Advance(rtt - rtt/2)
	n.counter.Lock()
	n.counter.n++
	n.counter.Unlock()
	if resp == nil {
		return nil, rtt, ErrDropped
	}
	if faulted {
		var fragDropped bool
		resp, fragDropped = n.responseFaults(to, query, resp, tcp)
		if fragDropped {
			// The oversized response fragmented and a fragment was lost:
			// the sender sees nothing and burns the full loss timeout.
			cost := n.lossTimeoutFor(to)
			if cost > rtt {
				n.clock.Advance(cost - rtt)
			} else {
				cost = rtt
			}
			return nil, cost, ErrLost
		}
	}
	if tap := n.WireTap; tap != nil {
		tap(Event{From: from, To: to, Query: query, Response: resp, RTT: rtt, Time: n.clock.Now()})
	}
	return resp, rtt, nil
}

// Exchanges returns the number of completed or dropped exchanges so far.
func (n *Network) Exchanges() int64 {
	n.counter.Lock()
	defer n.counter.Unlock()
	return n.counter.n
}
