package netem

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"ecsdns/internal/dnswire"
	"ecsdns/internal/geo"
)

func testWorld() *geo.Internet {
	return geo.Build(geo.Config{Seed: 1, NumASes: 80, BlocksPerAS: 1})
}

func TestClock(t *testing.T) {
	c := NewClock(SimStart)
	if !c.Now().Equal(SimStart) {
		t.Fatal("clock not at start")
	}
	c.Advance(5 * time.Second)
	if got := c.Now().Sub(SimStart); got != 5*time.Second {
		t.Fatalf("after Advance: %v", got)
	}
	c.Advance(-time.Hour)
	if got := c.Now().Sub(SimStart); got != 5*time.Second {
		t.Fatalf("negative Advance moved clock: %v", got)
	}
	c.Set(SimStart.Add(10 * time.Second))
	if got := c.Now().Sub(SimStart); got != 10*time.Second {
		t.Fatalf("Set: %v", got)
	}
	c.Set(SimStart) // backwards: ignored
	if got := c.Now().Sub(SimStart); got != 10*time.Second {
		t.Fatalf("backwards Set moved clock: %v", got)
	}
}

func TestExchangeDeliversAndTimes(t *testing.T) {
	w := testWorld()
	n := New(w)
	server := w.AddrInCity(geo.CityIndex("Chicago"), 0, 1)
	client := w.AddrInCity(geo.CityIndex("Cleveland"), 0, 2)
	n.Register(server, HandlerFunc(func(from netip.Addr, q *dnswire.Message) *dnswire.Message {
		if from != client {
			t.Errorf("handler saw from=%s", from)
		}
		r := dnswire.NewResponse(q)
		r.RCode = dnswire.RCodeNXDomain
		return r
	}))
	q := dnswire.NewQuery(1, "x.example.", dnswire.TypeA)
	before := n.Clock().Now()
	resp, rtt, err := n.Exchange(client, server, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeNXDomain || resp.ID != 1 {
		t.Fatalf("bad response: %v", resp)
	}
	if rtt <= 0 {
		t.Fatal("nonpositive RTT")
	}
	if got := n.Clock().Now().Sub(before); got != rtt {
		t.Fatalf("clock advanced %v, RTT %v", got, rtt)
	}
	if n.Exchanges() != 1 {
		t.Fatalf("Exchanges = %d", n.Exchanges())
	}
}

func TestExchangeNoRoute(t *testing.T) {
	n := New(testWorld())
	_, _, err := n.Exchange(netip.MustParseAddr("1.0.0.1"), netip.MustParseAddr("1.0.0.2"),
		dnswire.NewQuery(1, "x.", dnswire.TypeA))
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestExchangeDrop(t *testing.T) {
	w := testWorld()
	n := New(w)
	server := w.AddrInCity(0, 0, 1)
	n.Register(server, HandlerFunc(func(netip.Addr, *dnswire.Message) *dnswire.Message {
		return nil
	}))
	_, rtt, err := n.Exchange(w.AddrInCity(1, 0, 1), server, dnswire.NewQuery(1, "x.", dnswire.TypeA))
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	if rtt <= 0 {
		t.Fatal("drop must still cost time")
	}
}

func TestRTTTracksDistance(t *testing.T) {
	w := testWorld()
	n := New(w)
	cle := w.AddrInCity(geo.CityIndex("Cleveland"), 0, 1)
	chi := w.AddrInCity(geo.CityIndex("Chicago"), 0, 1)
	tok := w.AddrInCity(geo.CityIndex("Tokyo"), 0, 1)
	if n.RTT(cle, chi) >= n.RTT(cle, tok) {
		t.Fatalf("RTT(Cleveland,Chicago)=%v should be < RTT(Cleveland,Tokyo)=%v",
			n.RTT(cle, chi), n.RTT(cle, tok))
	}
	// Unknown endpoints fall back to base RTT.
	unknown := netip.MustParseAddr("203.0.113.1")
	base := time.Duration(geo.BaseRTTMillis * float64(time.Millisecond))
	if got := n.RTT(cle, unknown); got != base {
		t.Fatalf("RTT to unknown = %v, want base %v", got, base)
	}
}

func TestPlaceOverridesLocation(t *testing.T) {
	w := testWorld()
	n := New(w)
	anycast := netip.MustParseAddr("203.0.113.53")
	n.Place(anycast, geo.LocationOfCity(geo.CityIndex("Amsterdam")))
	loc, ok := n.LocationOf(anycast)
	if !ok || loc.City != "Amsterdam" {
		t.Fatalf("LocationOf placed addr = %v %v", loc, ok)
	}
	cle := w.AddrInCity(geo.CityIndex("Cleveland"), 0, 1)
	base := time.Duration(geo.BaseRTTMillis * float64(time.Millisecond))
	if got := n.RTT(cle, anycast); got <= base {
		t.Fatalf("RTT to placed addr = %v, want > base", got)
	}
}

func TestNestedExchange(t *testing.T) {
	// A resolver node that, when queried, itself queries an upstream
	// before answering; the clock must accumulate both paths.
	w := testWorld()
	n := New(w)
	upstream := w.AddrInCity(geo.CityIndex("Frankfurt"), 0, 1)
	mid := w.AddrInCity(geo.CityIndex("London"), 0, 1)
	client := w.AddrInCity(geo.CityIndex("Dublin"), 0, 1)
	n.Register(upstream, HandlerFunc(func(_ netip.Addr, q *dnswire.Message) *dnswire.Message {
		return dnswire.NewResponse(q)
	}))
	n.Register(mid, HandlerFunc(func(_ netip.Addr, q *dnswire.Message) *dnswire.Message {
		resp, _, err := n.Exchange(mid, upstream, q)
		if err != nil {
			t.Errorf("nested exchange: %v", err)
			return nil
		}
		return resp
	}))
	before := n.Clock().Now()
	_, rtt, err := n.Exchange(client, mid, dnswire.NewQuery(9, "nested.example.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	elapsed := n.Clock().Now().Sub(before)
	if elapsed <= rtt {
		t.Fatalf("elapsed %v should exceed single-hop RTT %v", elapsed, rtt)
	}
}

func TestWireTap(t *testing.T) {
	w := testWorld()
	n := New(w)
	server := w.AddrInCity(0, 0, 1)
	n.Register(server, HandlerFunc(func(_ netip.Addr, q *dnswire.Message) *dnswire.Message {
		return dnswire.NewResponse(q)
	}))
	var events []Event
	n.WireTap = func(ev Event) { events = append(events, ev) }
	client := w.AddrInCity(1, 0, 1)
	if _, _, err := n.Exchange(client, server, dnswire.NewQuery(2, "tap.example.", dnswire.TypeA)); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("tap saw %d events", len(events))
	}
	if events[0].From != client || events[0].To != server || events[0].Response == nil {
		t.Fatalf("tap event wrong: %+v", events[0])
	}
}

func TestRegisterNilDetaches(t *testing.T) {
	w := testWorld()
	n := New(w)
	addr := w.AddrInCity(0, 0, 1)
	n.Register(addr, HandlerFunc(func(_ netip.Addr, q *dnswire.Message) *dnswire.Message {
		return dnswire.NewResponse(q)
	}))
	n.Register(addr, nil)
	_, _, err := n.Exchange(w.AddrInCity(1, 0, 1), addr, dnswire.NewQuery(1, "x.", dnswire.TypeA))
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("err = %v after detach", err)
	}
}

func TestInjectedLoss(t *testing.T) {
	w := testWorld()
	n := New(w)
	server := w.AddrInCity(0, 0, 1)
	n.Register(server, HandlerFunc(func(_ netip.Addr, q *dnswire.Message) *dnswire.Message {
		return dnswire.NewResponse(q)
	}))
	client := w.AddrInCity(1, 0, 1)

	// Full loss: every exchange fails with ErrLost and costs a timeout.
	n.SetLoss(1.0, 1)
	before := n.Clock().Now()
	_, _, err := n.Exchange(client, server, dnswire.NewQuery(1, "x.", dnswire.TypeA))
	if !errors.Is(err, ErrLost) {
		t.Fatalf("err = %v, want ErrLost", err)
	}
	if n.Clock().Now().Sub(before) != time.Second {
		t.Fatal("lost exchange must cost a timeout")
	}

	// Partial loss: deterministic per seed, some exchanges succeed.
	n.SetLoss(0.5, 2)
	okCount, lostCount := 0, 0
	for i := 0; i < 100; i++ {
		_, _, err := n.Exchange(client, server, dnswire.NewQuery(uint16(i), "x.", dnswire.TypeA))
		if err == nil {
			okCount++
		} else if errors.Is(err, ErrLost) {
			lostCount++
		}
	}
	if okCount < 30 || lostCount < 30 {
		t.Fatalf("50%% loss produced %d ok / %d lost", okCount, lostCount)
	}

	// Disabled loss restores reliability.
	n.SetLoss(0, 0)
	if _, _, err := n.Exchange(client, server, dnswire.NewQuery(1, "x.", dnswire.TypeA)); err != nil {
		t.Fatalf("loss disabled but exchange failed: %v", err)
	}
}
