package netem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sync"
	"time"

	"ecsdns/internal/dnswire"
)

// Capture records every exchange on a network to a stream — the
// simulation's equivalent of the PF_RING tcpdump the paper ran on its
// scanner and experimental nameserver. Install with Attach, detach with
// Close, and replay with ReadCapture.
//
// The format is a length-prefixed binary framing of (time, endpoints,
// RTT, query wire bytes, response wire bytes); messages are stored in
// real DNS wire format so external tools can decode them.
type Capture struct {
	mu  sync.Mutex
	w   io.Writer
	n   int64
	err error
}

// captureMagic heads every capture stream (format version 1).
var captureMagic = [4]byte{'E', 'C', 'S', 1}

// NewCapture starts a capture stream on w, writing the header
// immediately.
func NewCapture(w io.Writer) (*Capture, error) {
	if _, err := w.Write(captureMagic[:]); err != nil {
		return nil, fmt.Errorf("netem: capture header: %w", err)
	}
	return &Capture{w: w}, nil
}

// Attach installs the capture as the network's wire tap and returns a
// detach function restoring the previous tap.
func (c *Capture) Attach(n *Network) (detach func()) {
	prev := n.WireTap
	n.WireTap = func(ev Event) {
		c.record(ev)
		if prev != nil {
			prev(ev)
		}
	}
	return func() { n.WireTap = prev }
}

// Records returns how many exchanges have been written.
func (c *Capture) Records() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Err returns the first write or encode error, if any; once set, further
// events are dropped.
func (c *Capture) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *Capture) record(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return
	}
	qBytes, err := ev.Query.Pack()
	if err != nil {
		c.err = err
		return
	}
	rBytes, err := ev.Response.Pack()
	if err != nil {
		c.err = err
		return
	}
	var hdr [8 + 16 + 16 + 8 + 4 + 4]byte
	binary.BigEndian.PutUint64(hdr[0:], uint64(ev.Time.UnixNano()))
	from16 := ev.From.As16()
	to16 := ev.To.As16()
	copy(hdr[8:24], from16[:])
	copy(hdr[24:40], to16[:])
	binary.BigEndian.PutUint64(hdr[40:], uint64(ev.RTT))
	binary.BigEndian.PutUint32(hdr[48:], uint32(len(qBytes)))
	binary.BigEndian.PutUint32(hdr[52:], uint32(len(rBytes)))
	if _, err := c.w.Write(hdr[:]); err != nil {
		c.err = err
		return
	}
	if _, err := c.w.Write(qBytes); err != nil {
		c.err = err
		return
	}
	if _, err := c.w.Write(rBytes); err != nil {
		c.err = err
		return
	}
	c.n++
}

// CapturedExchange is one decoded capture record.
type CapturedExchange struct {
	Time     time.Time
	From, To netip.Addr
	RTT      time.Duration
	Query    *dnswire.Message
	Response *dnswire.Message
}

// ErrBadCapture marks a stream that is not a capture or is corrupt.
var ErrBadCapture = errors.New("netem: not a capture stream")

// maxCapturedMessage bounds per-message allocations when reading
// untrusted capture files.
const maxCapturedMessage = dnswire.MaxMessageSize

// ReadCapture decodes a full capture stream.
func ReadCapture(r io.Reader) ([]CapturedExchange, error) {
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, ErrBadCapture
	}
	if magic != captureMagic {
		return nil, ErrBadCapture
	}
	var out []CapturedExchange
	var hdr [56]byte
	for {
		_, err := io.ReadFull(r, hdr[:])
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("netem: capture record header: %w", err)
		}
		qLen := binary.BigEndian.Uint32(hdr[48:])
		rLen := binary.BigEndian.Uint32(hdr[52:])
		if qLen > maxCapturedMessage || rLen > maxCapturedMessage {
			return nil, fmt.Errorf("%w: oversized record", ErrBadCapture)
		}
		buf := make([]byte, int(qLen)+int(rLen))
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("netem: capture record body: %w", err)
		}
		q, err := dnswire.Unpack(buf[:qLen])
		if err != nil {
			return nil, fmt.Errorf("netem: captured query: %w", err)
		}
		resp, err := dnswire.Unpack(buf[qLen:])
		if err != nil {
			return nil, fmt.Errorf("netem: captured response: %w", err)
		}
		out = append(out, CapturedExchange{
			Time:     time.Unix(0, int64(binary.BigEndian.Uint64(hdr[0:]))).UTC(),
			From:     addrFrom16(hdr[8:24]),
			To:       addrFrom16(hdr[24:40]),
			RTT:      time.Duration(binary.BigEndian.Uint64(hdr[40:])),
			Query:    q,
			Response: resp,
		})
	}
}

func addrFrom16(b []byte) netip.Addr {
	var a [16]byte
	copy(a[:], b)
	addr := netip.AddrFrom16(a)
	if addr.Is4In6() {
		return addr.Unmap()
	}
	return addr
}
