package netem

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"ecsdns/internal/dnswire"
	"ecsdns/internal/geo"
)

// faultRig registers one echoing server and returns (network, client,
// server) for fault tests.
func faultRig(t *testing.T) (*Network, netip.Addr, netip.Addr) {
	t.Helper()
	w := testWorld()
	n := New(w)
	server := w.AddrInCity(geo.CityIndex("Chicago"), 0, 1)
	n.Register(server, HandlerFunc(func(_ netip.Addr, q *dnswire.Message) *dnswire.Message {
		r := dnswire.NewResponse(q)
		r.Answers = []dnswire.RR{{
			Name: q.Question().Name, Class: dnswire.ClassINET, TTL: 30,
			Data: &dnswire.ARData{Addr: netip.MustParseAddr("192.0.2.1")},
		}}
		return r
	}))
	return n, w.AddrInCity(geo.CityIndex("Cleveland"), 0, 2), server
}

func TestFaultTruncation(t *testing.T) {
	n, client, server := faultRig(t)
	n.SetFaults(FaultPlan{Truncate: 1.0}, 1)
	resp, _, err := n.Exchange(client, server, dnswire.NewQuery(1, "x.example.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated || len(resp.Answers) != 0 {
		t.Fatalf("want truncated empty response, got TC=%v answers=%d", resp.Truncated, len(resp.Answers))
	}
	if resp.ID != 1 || resp.Question().Name != "x.example." {
		t.Fatalf("truncation must preserve ID and question: %v", resp)
	}
	if st := n.FaultStats(); st.Truncated != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestFaultTruncationShape is the regression test for the bare-TC=1
// shape: injected truncation must clear the AA and AD bits and strip
// EDNS along with the record sections, since a real size-limited server
// sends back a bare header.
func TestFaultTruncationShape(t *testing.T) {
	n, client, server := faultRig(t)
	n.Register(server, HandlerFunc(func(_ netip.Addr, q *dnswire.Message) *dnswire.Message {
		r := dnswire.NewResponse(q)
		r.Authoritative = true
		r.AuthenticData = true
		r.EDNS = dnswire.NewEDNS()
		r.Answers = []dnswire.RR{{
			Name: q.Question().Name, Class: dnswire.ClassINET, TTL: 30,
			Data: &dnswire.ARData{Addr: netip.MustParseAddr("192.0.2.1")},
		}}
		return r
	}))
	n.SetFaults(FaultPlan{Truncate: 1.0}, 1)
	resp, _, err := n.Exchange(client, server, dnswire.NewQuery(9, "x.example.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Fatal("TC bit not set")
	}
	if resp.Authoritative || resp.AuthenticData {
		t.Fatalf("truncated response kept AA=%v AD=%v; want both cleared", resp.Authoritative, resp.AuthenticData)
	}
	if resp.EDNS != nil {
		t.Fatal("truncated response kept its OPT record")
	}
	if len(resp.Answers) != 0 || len(resp.Authorities) != 0 || len(resp.Additionals) != 0 {
		t.Fatalf("truncated response kept records: %v", resp)
	}
}

func TestFaultPayloadTruncation(t *testing.T) {
	n, client, server := faultRig(t)
	n.SetFaults(FaultPlan{Payload: 3000}, 1)

	// No EDNS: the classic 512-byte budget, so a 3000-byte response
	// comes back as a bare TC=1.
	resp, _, err := n.Exchange(client, server, dnswire.NewQuery(1, "x.example.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated || resp.EDNS != nil || len(resp.Answers) != 0 {
		t.Fatalf("want bare TC=1 for undersized buffer, got %v", resp)
	}

	// A 4096-byte EDNS buffer fits the inflated response: intact answer.
	q := dnswire.NewQuery(2, "x.example.", dnswire.TypeA)
	q.EDNS = dnswire.NewEDNS()
	resp, _, err = n.Exchange(client, server, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated || len(resp.Answers) != 1 {
		t.Fatalf("big buffer should pass intact, got %v", resp)
	}

	// A 1232-byte buffer is again too small.
	q = dnswire.NewQuery(3, "x.example.", dnswire.TypeA)
	q.EDNS = &dnswire.EDNS{UDPSize: 1232}
	resp, _, err = n.Exchange(client, server, q)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Truncated {
		t.Fatalf("1232 buffer vs 3000 payload should truncate, got %v", resp)
	}
	if st := n.FaultStats(); st.SizeTruncated != 2 || st.Truncated != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultFragLoss(t *testing.T) {
	n, client, server := faultRig(t)
	n.SetFaults(FaultPlan{Payload: 3000, FragLoss: 1.0, LossTimeout: 2 * time.Second}, 1)
	q := dnswire.NewQuery(1, "x.example.", dnswire.TypeA)
	q.EDNS = dnswire.NewEDNS() // 4096: big enough, so fragmentation applies
	before := n.Clock().Now()
	resp, cost, err := n.Exchange(client, server, q)
	if !errors.Is(err, ErrLost) || resp != nil {
		t.Fatalf("want ErrLost, got resp=%v err=%v", resp, err)
	}
	if cost != 2*time.Second {
		t.Fatalf("frag drop cost = %v, want the 2s loss timeout", cost)
	}
	if got := n.Clock().Now().Sub(before); got != cost {
		t.Fatalf("clock advanced %v, cost %v", got, cost)
	}
	st := n.FaultStats()
	if st.FragDrops != 1 || st.Lost != 1 {
		t.Fatalf("stats = %+v", st)
	}

	// Below the fragmentation threshold no drop applies even at p=1.
	n.SetFaults(FaultPlan{Payload: 1300, FragLoss: 1.0}, 2)
	if _, _, err := n.Exchange(client, server, q); err != nil {
		t.Fatalf("sub-threshold payload dropped: %v", err)
	}
	// And a custom threshold brings it back.
	n.SetFaults(FaultPlan{Payload: 1300, FragLoss: 1.0, FragThreshold: 1200}, 3)
	if _, _, err := n.Exchange(client, server, q); !errors.Is(err, ErrLost) {
		t.Fatalf("custom threshold not honored: %v", err)
	}
}

func TestFaultTCPImmunity(t *testing.T) {
	n, client, server := faultRig(t)
	n.SetFaults(FaultPlan{Payload: 3000, FragLoss: 1.0, Truncate: 1.0, Corrupt: 1.0}, 1)
	q := dnswire.NewQuery(5, "x.example.", dnswire.TypeA)
	resp, _, err := n.ExchangeTCP(client, server, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Truncated || resp.ID != q.ID || len(resp.Answers) != 1 {
		t.Fatalf("TCP exchange hit a UDP-only fault: %v", resp)
	}
	if st := n.FaultStats(); st.SizeTruncated != 0 || st.FragDrops != 0 || st.Truncated != 0 || st.Corrupted != 0 {
		t.Fatalf("stats = %+v", st)
	}

	// SERVFAIL injection and loss still apply on the stream path.
	n.SetFaults(FaultPlan{ServFail: 1.0}, 2)
	resp, _, err = n.ExchangeTCP(client, server, q)
	if err != nil || resp.RCode != dnswire.RCodeServFail {
		t.Fatalf("TCP servfail injection: resp=%v err=%v", resp, err)
	}
	n.SetFaults(FaultPlan{Loss: 1.0}, 3)
	if _, _, err := n.ExchangeTCP(client, server, q); !errors.Is(err, ErrLost) {
		t.Fatalf("TCP loss injection: %v", err)
	}
}

func TestFaultServFail(t *testing.T) {
	n, client, server := faultRig(t)
	n.SetFaults(FaultPlan{ServFail: 1.0}, 1)
	resp, _, err := n.Exchange(client, server, dnswire.NewQuery(2, "x.example.", dnswire.TypeA))
	if err != nil {
		t.Fatal(err)
	}
	if resp.RCode != dnswire.RCodeServFail || len(resp.Answers) != 0 {
		t.Fatalf("want injected SERVFAIL, got %v", resp)
	}
	if st := n.FaultStats(); st.ServFails != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultCorruptionFlipsID(t *testing.T) {
	n, client, server := faultRig(t)
	n.SetFaults(FaultPlan{Corrupt: 1.0}, 1)
	q := dnswire.NewQuery(7, "x.example.", dnswire.TypeA)
	resp, _, err := n.Exchange(client, server, q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID == q.ID {
		t.Fatal("corrupted response kept a matching ID")
	}
	if st := n.FaultStats(); st.Corrupted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultBlackoutWindow(t *testing.T) {
	n, client, server := faultRig(t)
	start := n.Clock().Now()
	n.SetFaults(FaultPlan{Blackouts: []Window{
		{Start: start.Add(10 * time.Second), End: start.Add(20 * time.Second)},
	}}, 1)
	q := dnswire.NewQuery(1, "x.example.", dnswire.TypeA)
	if _, _, err := n.Exchange(client, server, q); err != nil {
		t.Fatalf("before blackout: %v", err)
	}
	n.Clock().Set(start.Add(15 * time.Second))
	if _, _, err := n.Exchange(client, server, q); !errors.Is(err, ErrLost) {
		t.Fatalf("inside blackout: err = %v, want ErrLost", err)
	}
	n.Clock().Set(start.Add(25 * time.Second))
	if _, _, err := n.Exchange(client, server, q); err != nil {
		t.Fatalf("after blackout: %v", err)
	}
	st := n.FaultStats()
	if st.Blackouts != 1 || st.Lost != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultLatencyAndJitter(t *testing.T) {
	n, client, server := faultRig(t)
	base := n.RTT(client, server)
	q := dnswire.NewQuery(1, "x.example.", dnswire.TypeA)

	n.SetFaults(FaultPlan{Latency: 40 * time.Millisecond}, 1)
	before := n.Clock().Now()
	_, rtt, err := n.Exchange(client, server, q)
	if err != nil {
		t.Fatal(err)
	}
	if rtt != base+40*time.Millisecond {
		t.Fatalf("rtt = %v, want base %v + 40ms", rtt, base)
	}
	if got := n.Clock().Now().Sub(before); got != rtt {
		t.Fatalf("clock advanced %v, rtt %v", got, rtt)
	}

	n.SetFaults(FaultPlan{Jitter: 30 * time.Millisecond}, 2)
	_, rtt, err = n.Exchange(client, server, q)
	if err != nil {
		t.Fatal(err)
	}
	if rtt < base || rtt >= base+30*time.Millisecond {
		t.Fatalf("jittered rtt = %v outside [base, base+30ms)", rtt)
	}
	st := n.FaultStats()
	if st.Delayed != 2 || st.ExtraLatency < 40*time.Millisecond {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPerNodeFaultsCompose(t *testing.T) {
	w := testWorld()
	n := New(w)
	echo := HandlerFunc(func(_ netip.Addr, q *dnswire.Message) *dnswire.Message {
		return dnswire.NewResponse(q)
	})
	flaky := w.AddrInCity(0, 0, 1)
	solid := w.AddrInCity(1, 0, 1)
	n.Register(flaky, echo)
	n.Register(solid, echo)
	client := w.AddrInCity(2, 0, 1)
	n.SetNodeFaults(flaky, FaultPlan{ServFail: 1.0}, 3)

	q := dnswire.NewQuery(1, "x.", dnswire.TypeA)
	resp, _, err := n.Exchange(client, flaky, q)
	if err != nil || resp.RCode != dnswire.RCodeServFail {
		t.Fatalf("faulted node: resp=%v err=%v", resp, err)
	}
	resp, _, err = n.Exchange(client, solid, q)
	if err != nil || resp.RCode != dnswire.RCodeNoError {
		t.Fatalf("clean node hit by node fault: resp=%v err=%v", resp, err)
	}

	// Global + node plans compose: global loss applies to both nodes.
	n.SetFaults(FaultPlan{Loss: 1.0}, 4)
	if _, _, err := n.Exchange(client, solid, q); !errors.Is(err, ErrLost) {
		t.Fatalf("global loss not applied: %v", err)
	}
	n.SetNodeFaults(flaky, FaultPlan{}, 0) // clear
	n.SetFaults(FaultPlan{}, 0)
	if _, _, err := n.Exchange(client, flaky, q); err != nil {
		t.Fatalf("cleared plans still inject: %v", err)
	}
}

func TestFaultDeterminism(t *testing.T) {
	trace := func() []string {
		n, client, server := faultRig(t)
		n.SetFaults(FaultPlan{Loss: 0.3, Truncate: 0.2, ServFail: 0.2, Corrupt: 0.1, Jitter: 10 * time.Millisecond}, 42)
		var out []string
		for i := 0; i < 200; i++ {
			q := dnswire.NewQuery(uint16(i), "d.example.", dnswire.TypeA)
			resp, rtt, err := n.Exchange(client, server, q)
			switch {
			case err != nil:
				out = append(out, "lost")
			case resp.Truncated:
				out = append(out, "trunc")
			case resp.RCode == dnswire.RCodeServFail:
				out = append(out, "servfail")
			case resp.ID != q.ID:
				out = append(out, "corrupt")
			default:
				out = append(out, rtt.String())
			}
		}
		return out
	}
	a, b := trace(), trace()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("loss=0.1, latency=30ms,jitter=10ms,truncate=0.2,servfail=0.15,corrupt=0.05,blackout=2m+30s,blackout=10m+1m,payload=3000,fragloss=0.9,fragthreshold=1200")
	if err != nil {
		t.Fatal(err)
	}
	if p.Loss != 0.1 || p.Latency != 30*time.Millisecond || p.Jitter != 10*time.Millisecond ||
		p.Truncate != 0.2 || p.ServFail != 0.15 || p.Corrupt != 0.05 ||
		p.Payload != 3000 || p.FragLoss != 0.9 || p.FragThreshold != 1200 {
		t.Fatalf("parsed plan = %+v", p)
	}
	if len(p.Blackouts) != 2 {
		t.Fatalf("blackouts = %v", p.Blackouts)
	}
	if !p.Blackouts[0].Start.Equal(SimStart.Add(2*time.Minute)) ||
		!p.Blackouts[0].End.Equal(SimStart.Add(2*time.Minute+30*time.Second)) {
		t.Fatalf("blackout window = %+v", p.Blackouts[0])
	}
	if p2, err := ParseFaultPlan("  "); err != nil || !p2.IsZero() {
		t.Fatalf("empty spec: %+v %v", p2, err)
	}
	for _, bad := range []string{
		"loss=2", "loss=x", "frob=1", "latency=-5s", "blackout=10s",
		"blackout=x+y", "loss", "truncate=-0.1",
		"payload=0", "payload=-1", "payload=70000", "payload=big",
		"fragloss=1.5", "fragloss=x", "fragthreshold=0", "fragthreshold=65536",
	} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}
