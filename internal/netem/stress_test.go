package netem

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"ecsdns/internal/dnswire"
	"ecsdns/internal/geo"
)

// TestConcurrentClockAccess races Advance/Set against Now and asserts
// monotonicity: the virtual clock must never be observed moving
// backwards, whatever interleaving -race explores.
func TestConcurrentClockAccess(t *testing.T) {
	clk := NewClock(SimStart)
	const workers = 4
	const iters = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch {
				case i%3 == 0:
					clk.Advance(time.Duration(w+1) * time.Microsecond)
				case i%7 == 0:
					clk.Set(SimStart.Add(time.Duration(i) * time.Millisecond))
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := SimStart
			for i := 0; i < iters; i++ {
				now := clk.Now()
				if now.Before(last) {
					t.Errorf("clock went backwards: %v after %v", now, last)
					return
				}
				last = now
			}
		}()
	}
	wg.Wait()
	// The largest Set that fires is near iters ms; every Advance adds on
	// top, so well over a second must have accumulated.
	if clk.Now().Before(SimStart.Add(time.Second)) {
		t.Fatalf("clock barely moved: %v", clk.Now())
	}
}

// TestConcurrentFaultReconfiguration exercises the fault layer's locking:
// plans are installed, swapped and cleared from several goroutines while
// exchanges run (the netem fabric serializes handler execution behind a
// mutex, as every concurrent consumer must; the fault API itself is what
// is allowed to race with it).
func TestConcurrentFaultReconfiguration(t *testing.T) {
	w := geo.Build(geo.Config{Seed: 5, NumASes: 40, BlocksPerAS: 1})
	n := New(w)
	server := w.AddrInCity(geo.CityIndex("Frankfurt"), 1, 53)
	n.Register(server, HandlerFunc(func(_ netip.Addr, q *dnswire.Message) *dnswire.Message {
		resp := dnswire.NewResponse(q)
		resp.Answers = []dnswire.RR{{
			Name:  q.Questions[0].Name,
			Class: dnswire.ClassINET, TTL: 30,
			Data: &dnswire.ARData{Addr: netip.MustParseAddr("192.0.2.1")},
		}}
		return resp
	}))
	client := w.AddrInCity(geo.CityIndex("London"), 2, 9)

	const iters = 400
	var exMu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(3)
	go func() { // exchanger
		defer wg.Done()
		for i := 0; i < iters; i++ {
			q := dnswire.NewQuery(uint16(i+1), "stress.example.", dnswire.TypeA)
			exMu.Lock()
			resp, _, err := n.Exchange(client, server, q)
			exMu.Unlock()
			if err == nil && resp == nil {
				t.Error("nil response without error")
				return
			}
		}
	}()
	go func() { // global plan churner
		defer wg.Done()
		for i := 0; i < iters; i++ {
			switch i % 3 {
			case 0:
				n.SetFaults(FaultPlan{Loss: 0.2, Latency: time.Millisecond}, int64(i))
			case 1:
				n.SetFaults(FaultPlan{ServFail: 0.3}, int64(i))
			default:
				n.ClearFaults()
			}
		}
	}()
	go func() { // per-node plan churner + stats reader
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if i%2 == 0 {
				n.SetNodeFaults(server, FaultPlan{Truncate: 0.4}, int64(i))
			} else {
				n.SetNodeFaults(server, FaultPlan{}, 0)
			}
			s := n.FaultStats()
			if s.Lost < 0 || s.Truncated < 0 {
				t.Errorf("negative fault stats: %+v", s)
				return
			}
		}
	}()
	wg.Wait()
}
