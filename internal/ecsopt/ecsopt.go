// Package ecsopt implements the EDNS0 Client Subnet option (RFC 7871):
// encoding, decoding, prefix arithmetic, validation, and the coverage test
// that drives scope-limited caching. It is deliberately strict where the
// RFC is strict (trailing address bits must be zero, scope must be zero in
// queries) and exposes lenient decoding separately, because the paper's
// whole subject is resolvers that get these details wrong.
package ecsopt

import (
	"errors"
	"fmt"
	"net/netip"

	"ecsdns/internal/dnswire"
)

// Family is the ECS address family (RFC 7871 uses the Address Family
// Numbers registry).
type Family uint16

// Address families.
const (
	FamilyNone Family = 0 // only valid with a zero source prefix
	FamilyIPv4 Family = 1
	FamilyIPv6 Family = 2
)

// String returns the family mnemonic.
func (f Family) String() string {
	switch f {
	case FamilyNone:
		return "none"
	case FamilyIPv4:
		return "IPv4"
	case FamilyIPv6:
		return "IPv6"
	}
	return fmt.Sprintf("family%d", uint16(f))
}

// MaxPrefix returns the address width in bits for the family (0 for
// FamilyNone).
func (f Family) MaxPrefix() int {
	switch f {
	case FamilyIPv4:
		return 32
	case FamilyIPv6:
		return 128
	}
	return 0
}

// RFC 7871 recommended maximum source prefix lengths for client privacy.
const (
	RecommendedMaxV4 = 24
	RecommendedMaxV6 = 56
)

// Decoding and validation errors.
var (
	ErrShortOption    = errors.New("ecsopt: option data too short")
	ErrBadFamily      = errors.New("ecsopt: unknown address family")
	ErrPrefixTooLong  = errors.New("ecsopt: source prefix exceeds address width")
	ErrScopeTooLong   = errors.New("ecsopt: scope prefix exceeds address width")
	ErrAddressLength  = errors.New("ecsopt: address length does not match source prefix")
	ErrTrailingBits   = errors.New("ecsopt: nonzero bits beyond source prefix")
	ErrScopeInQuery   = errors.New("ecsopt: nonzero scope prefix in query")
	ErrFamilyMismatch = errors.New("ecsopt: family does not match address")
	ErrMissingFamily  = errors.New("ecsopt: nonzero source prefix with family none")
)

// ClientSubnet is a decoded ECS option. Addr is always masked to
// SourcePrefix bits. In queries ScopePrefix must be zero; in responses it
// carries the authoritative answer's coverage.
type ClientSubnet struct {
	Family       Family
	SourcePrefix uint8
	ScopePrefix  uint8
	Addr         netip.Addr
}

// New builds a query-side ClientSubnet from an address and source prefix
// length, masking the address. The family is inferred from the address.
func New(addr netip.Addr, sourcePrefix int) (ClientSubnet, error) {
	fam := FamilyIPv4
	if addr.Is6() && !addr.Is4In6() {
		fam = FamilyIPv6
	}
	if sourcePrefix < 0 || sourcePrefix > fam.MaxPrefix() {
		return ClientSubnet{}, ErrPrefixTooLong
	}
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	masked, err := maskAddr(addr, sourcePrefix)
	if err != nil {
		return ClientSubnet{}, err
	}
	return ClientSubnet{
		Family:       fam,
		SourcePrefix: uint8(sourcePrefix),
		Addr:         masked,
	}, nil
}

// MustNew is New for static data; it panics on error.
func MustNew(addr netip.Addr, sourcePrefix int) ClientSubnet {
	cs, err := New(addr, sourcePrefix)
	if err != nil {
		panic("ecsopt: MustNew: " + err.Error())
	}
	return cs
}

// Zero returns the family-0 source-0 option a resolver sends to signal
// "no client information, and do not guess" (RFC 7871 §7.1.2).
func Zero() ClientSubnet {
	return ClientSubnet{Family: FamilyNone}
}

// IsZero reports whether cs carries no address information.
func (cs ClientSubnet) IsZero() bool {
	return cs.SourcePrefix == 0 && (cs.Family == FamilyNone || !cs.Addr.IsValid() || cs.Addr.IsUnspecified())
}

// WithScope returns a copy of cs with the scope prefix set (a response
// option).
func (cs ClientSubnet) WithScope(scope int) ClientSubnet {
	cs.ScopePrefix = uint8(scope)
	return cs
}

// Prefix returns the subnet as a netip.Prefix at the source prefix length.
// The zero option returns an invalid prefix.
func (cs ClientSubnet) Prefix() netip.Prefix {
	if !cs.Addr.IsValid() {
		return netip.Prefix{}
	}
	return netip.PrefixFrom(cs.Addr, int(cs.SourcePrefix))
}

// ScopedPrefix returns the subnet at the scope prefix length, which is how
// a cache must index a response option.
func (cs ClientSubnet) ScopedPrefix() netip.Prefix {
	if !cs.Addr.IsValid() {
		return netip.Prefix{}
	}
	p, err := cs.Addr.Prefix(int(cs.ScopePrefix))
	if err != nil {
		return netip.Prefix{}
	}
	return p
}

// Covers reports whether addr falls inside the option's subnet at `bits`
// bits. bits=0 covers every address of the same family.
func (cs ClientSubnet) Covers(addr netip.Addr, bits int) bool {
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	switch cs.Family {
	case FamilyIPv4:
		if !addr.Is4() {
			return false
		}
	case FamilyIPv6:
		if !addr.Is6() || addr.Is4() {
			return false
		}
	default:
		return bits == 0
	}
	if bits == 0 {
		return true
	}
	p, err := cs.Addr.Prefix(bits)
	if err != nil {
		return false
	}
	return p.Contains(addr)
}

// String renders "addr/source/scope" ("none/0/0" for the zero option).
func (cs ClientSubnet) String() string {
	if cs.Family == FamilyNone || !cs.Addr.IsValid() {
		return fmt.Sprintf("none/%d/%d", cs.SourcePrefix, cs.ScopePrefix)
	}
	return fmt.Sprintf("%s/%d/%d", cs.Addr, cs.SourcePrefix, cs.ScopePrefix)
}

// Encode serializes cs into a dnswire EDNS0 option. The address field is
// truncated to the minimum number of octets that hold SourcePrefix bits,
// as the RFC requires.
func (cs ClientSubnet) Encode() dnswire.Option {
	nbytes := (int(cs.SourcePrefix) + 7) / 8
	data := make([]byte, 4+nbytes)
	data[0] = byte(cs.Family >> 8)
	data[1] = byte(cs.Family)
	data[2] = cs.SourcePrefix
	data[3] = cs.ScopePrefix
	if nbytes > 0 && cs.Addr.IsValid() {
		var raw []byte
		if cs.Addr.Is4() {
			a := cs.Addr.As4()
			raw = a[:]
		} else {
			a := cs.Addr.As16()
			raw = a[:]
		}
		copy(data[4:], raw[:nbytes])
	}
	return dnswire.Option{Code: dnswire.OptionCodeECS, Data: data}
}

// Decode parses an ECS option strictly: family consistent with prefix
// lengths, exact address field length, zero trailing bits.
func Decode(opt dnswire.Option) (ClientSubnet, error) {
	return decode(opt, true)
}

// DecodeLenient parses an ECS option while tolerating the deviations the
// paper observes in the wild: nonzero trailing bits are masked off rather
// than rejected, and over-long address fields are truncated.
func DecodeLenient(opt dnswire.Option) (ClientSubnet, error) {
	return decode(opt, false)
}

func decode(opt dnswire.Option, strict bool) (ClientSubnet, error) {
	d := opt.Data
	if len(d) < 4 {
		return ClientSubnet{}, ErrShortOption
	}
	fam := Family(uint16(d[0])<<8 | uint16(d[1]))
	source := d[2]
	scope := d[3]
	addrBytes := d[4:]

	if fam == FamilyNone {
		if source != 0 {
			return ClientSubnet{}, ErrMissingFamily
		}
		//ecslint:ignore ecssemantics the decoder preserves the wire's scope byte verbatim; clamping is the caller's policy (DecodeLenient callers measure deviations)
		return ClientSubnet{Family: FamilyNone, ScopePrefix: scope}, nil
	}
	if fam != FamilyIPv4 && fam != FamilyIPv6 {
		return ClientSubnet{}, ErrBadFamily
	}
	maxBits := fam.MaxPrefix()
	if int(source) > maxBits {
		return ClientSubnet{}, ErrPrefixTooLong
	}
	if int(scope) > maxBits {
		return ClientSubnet{}, ErrScopeTooLong
	}
	want := (int(source) + 7) / 8
	if strict && len(addrBytes) != want {
		return ClientSubnet{}, ErrAddressLength
	}
	if !strict && len(addrBytes) < want {
		return ClientSubnet{}, ErrAddressLength
	}

	full := make([]byte, maxBits/8)
	copy(full, addrBytes[:min(len(addrBytes), len(full))])
	var addr netip.Addr
	if fam == FamilyIPv4 {
		addr = netip.AddrFrom4([4]byte(full))
	} else {
		addr = netip.AddrFrom16([16]byte(full))
	}
	masked, err := maskAddr(addr, int(source))
	if err != nil {
		return ClientSubnet{}, err
	}
	if strict && masked != addr {
		return ClientSubnet{}, ErrTrailingBits
	}
	//ecslint:ignore ecssemantics the decoder preserves the wire's scope byte verbatim; clamping is the caller's policy (the paper's scanner measures raw scopes)
	return ClientSubnet{Family: fam, SourcePrefix: source, ScopePrefix: scope, Addr: masked}, nil
}

// FromMessage extracts and strictly decodes the ECS option from a
// message's EDNS block. The second return is false when no ECS option is
// present (which is not an error).
func FromMessage(m *dnswire.Message) (ClientSubnet, bool, error) {
	if m.EDNS == nil {
		return ClientSubnet{}, false, nil
	}
	opt, ok := m.EDNS.Option(dnswire.OptionCodeECS)
	if !ok {
		return ClientSubnet{}, false, nil
	}
	cs, err := Decode(opt)
	if err != nil {
		return ClientSubnet{}, true, err
	}
	return cs, true, nil
}

// Attach sets cs as the ECS option on m, creating the EDNS block if
// needed.
func Attach(m *dnswire.Message, cs ClientSubnet) {
	if m.EDNS == nil {
		m.EDNS = dnswire.NewEDNS()
	}
	m.EDNS.SetOption(cs.Encode())
}

// Strip removes any ECS option from m and reports whether one was there.
func Strip(m *dnswire.Message) bool {
	if m.EDNS == nil {
		return false
	}
	return m.EDNS.RemoveOption(dnswire.OptionCodeECS)
}

// ValidateQuery enforces the query-side RFC rules on a decoded option:
// scope must be zero.
func ValidateQuery(cs ClientSubnet) error {
	if cs.ScopePrefix != 0 {
		return ErrScopeInQuery
	}
	return nil
}

// ClampScope applies the RFC 7871 rule that a response scope longer than
// the query's source prefix must not widen what the resolver caches: such
// responses are usable only for this query, which conservative resolvers
// implement by clamping scope to source.
func ClampScope(querySource, responseScope uint8) uint8 {
	if responseScope > querySource {
		return querySource
	}
	return responseScope
}

// IsRoutable reports whether the option's subnet is globally routable.
// Loopback, private (RFC 1918), link-local/self-assigned, and unspecified
// prefixes are the non-routable families the paper observes in the wild
// (§8.1).
func (cs ClientSubnet) IsRoutable() bool {
	if cs.Family == FamilyNone || !cs.Addr.IsValid() {
		return false
	}
	a := cs.Addr
	return !(a.IsLoopback() || a.IsPrivate() || a.IsLinkLocalUnicast() ||
		a.IsLinkLocalMulticast() || a.IsUnspecified() || a.IsMulticast())
}

// maskAddr zeroes every bit of addr beyond the first `bits` bits.
func maskAddr(addr netip.Addr, bits int) (netip.Addr, error) {
	p, err := addr.Prefix(bits)
	if err != nil {
		return netip.Addr{}, ErrPrefixTooLong
	}
	return p.Addr(), nil
}

// MaskAddr is the exported form of the prefix mask used throughout the
// experiments: it zeroes every bit of addr beyond `bits`.
func MaskAddr(addr netip.Addr, bits int) netip.Addr {
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	m, err := maskAddr(addr, bits)
	if err != nil {
		return addr
	}
	return m
}
