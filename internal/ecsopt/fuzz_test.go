package ecsopt

import (
	"bytes"
	"net/netip"
	"testing"

	"ecsdns/internal/dnswire"
)

// FuzzDecode feeds arbitrary option payloads through both decoders and
// checks the invariants that hold for any input: no panic, strict ⊂
// lenient, masked addresses, and a stable encode/decode round trip.
func FuzzDecode(f *testing.F) {
	// Valid corpus: the shapes the paper's datasets contain.
	f.Add(MustNew(netip.MustParseAddr("1.2.3.0"), 24).Encode().Data)
	f.Add(MustNew(netip.MustParseAddr("1.2.3.4"), 32).Encode().Data)
	f.Add(MustNew(netip.MustParseAddr("2001:db8::"), 56).Encode().Data)
	f.Add(Zero().Encode().Data)
	f.Add(MustNew(netip.MustParseAddr("10.1.2.0"), 24).WithScope(24).Encode().Data)
	// Known-deviant shapes: trailing bits, short/long address fields,
	// unknown family, over-long prefixes.
	f.Add([]byte{0, 1, 24, 0, 1, 2, 3, 4})
	f.Add([]byte{0, 1, 24, 0, 1, 2})
	f.Add([]byte{0, 3, 24, 0, 1, 2, 3})
	f.Add([]byte{0, 1, 33, 0, 1, 2, 3, 4, 5})
	f.Add([]byte{0, 0, 0, 24})
	f.Add([]byte{0, 2, 129, 0})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		opt := dnswire.Option{Code: dnswire.OptionCodeECS, Data: data}
		strictCS, strictErr := Decode(opt)
		lenientCS, lenientErr := DecodeLenient(opt)

		// Anything the strict decoder accepts the lenient one must too,
		// and they must agree on what it means.
		if strictErr == nil {
			if lenientErr != nil {
				t.Fatalf("strict accepted %x but lenient rejected it: %v", data, lenientErr)
			}
			if strictCS != lenientCS {
				t.Fatalf("decoders disagree on %x: strict=%v lenient=%v", data, strictCS, lenientCS)
			}
		}

		for _, cs := range []struct {
			name string
			cs   ClientSubnet
			err  error
		}{{"strict", strictCS, strictErr}, {"lenient", lenientCS, lenientErr}} {
			if cs.err != nil {
				continue
			}
			// The decoded address must already be masked to the source
			// prefix — cache keys and coverage tests depend on it.
			if cs.cs.Addr.IsValid() {
				if masked := MaskAddr(cs.cs.Addr, int(cs.cs.SourcePrefix)); masked != cs.cs.Addr {
					t.Fatalf("%s decode of %x left trailing bits: %v != %v", cs.name, data, cs.cs.Addr, masked)
				}
			}
			// Encode is canonical: re-decoding what we encode must be
			// error-free and idempotent, for either decoder.
			enc := cs.cs.Encode()
			re, err := Decode(enc)
			if err != nil {
				t.Fatalf("%s round trip of %x: re-decode failed: %v", cs.name, data, err)
			}
			if re != cs.cs {
				t.Fatalf("%s round trip of %x: %v != %v", cs.name, data, re, cs.cs)
			}
			if enc2 := re.Encode(); !bytes.Equal(enc2.Data, enc.Data) {
				t.Fatalf("%s encode of %x not canonical: %x != %x", cs.name, data, enc2.Data, enc.Data)
			}
			// Derived views must not panic on any accepted input.
			_ = cs.cs.Prefix()
			_ = cs.cs.ScopedPrefix()
			_ = cs.cs.String()
			_ = cs.cs.IsZero()
			_ = cs.cs.IsRoutable()
			_ = cs.cs.Covers(netip.MustParseAddr("192.0.2.1"), int(cs.cs.SourcePrefix))
		}
	})
}
