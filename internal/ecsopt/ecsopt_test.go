package ecsopt

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"

	"ecsdns/internal/dnswire"
)

func TestNewMasksAddress(t *testing.T) {
	cs, err := New(netip.MustParseAddr("192.0.2.213"), 24)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Addr != netip.MustParseAddr("192.0.2.0") {
		t.Fatalf("address not masked: %s", cs.Addr)
	}
	if cs.Family != FamilyIPv4 || cs.SourcePrefix != 24 || cs.ScopePrefix != 0 {
		t.Fatalf("fields wrong: %+v", cs)
	}
}

func TestNewIPv6(t *testing.T) {
	cs, err := New(netip.MustParseAddr("2001:db8:1234:5678::42"), 56)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Family != FamilyIPv6 {
		t.Fatalf("family = %v", cs.Family)
	}
	if cs.Addr != netip.MustParseAddr("2001:db8:1234:5600::") {
		t.Fatalf("masked addr = %s", cs.Addr)
	}
}

func TestNewUnmaps4In6(t *testing.T) {
	cs, err := New(netip.MustParseAddr("::ffff:192.0.2.7"), 24)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Family != FamilyIPv4 || !cs.Addr.Is4() {
		t.Fatalf("4-in-6 not unmapped: %+v", cs)
	}
}

func TestNewRejectsOversizePrefix(t *testing.T) {
	if _, err := New(netip.MustParseAddr("192.0.2.1"), 33); err != ErrPrefixTooLong {
		t.Fatalf("got %v, want ErrPrefixTooLong", err)
	}
	if _, err := New(netip.MustParseAddr("2001:db8::1"), 129); err != ErrPrefixTooLong {
		t.Fatalf("got %v, want ErrPrefixTooLong", err)
	}
}

func TestEncodeTruncatesAddress(t *testing.T) {
	cs := MustNew(netip.MustParseAddr("192.0.2.213"), 24)
	opt := cs.Encode()
	if opt.Code != dnswire.OptionCodeECS {
		t.Fatalf("option code = %d", opt.Code)
	}
	// family(2) + prefixes(2) + 3 address bytes for /24.
	if len(opt.Data) != 7 {
		t.Fatalf("encoded length = %d, want 7", len(opt.Data))
	}
	want := []byte{0, 1, 24, 0, 192, 0, 2}
	for i, b := range want {
		if opt.Data[i] != b {
			t.Fatalf("byte %d = %#x, want %#x (%x)", i, opt.Data[i], b, opt.Data)
		}
	}
}

func TestEncodeOddPrefix(t *testing.T) {
	// /25 needs 4 address bytes; bit 25 onward must be zero.
	cs := MustNew(netip.MustParseAddr("192.0.2.213"), 25)
	opt := cs.Encode()
	if len(opt.Data) != 8 {
		t.Fatalf("encoded length = %d, want 8", len(opt.Data))
	}
	if opt.Data[7] != 0x80 { // 213 = 0b11010101 → top bit survives /25
		t.Fatalf("last byte = %#x, want 0x80", opt.Data[7])
	}
}

func TestDecodeRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		addr string
		src  int
	}{
		{"192.0.2.213", 24},
		{"192.0.2.213", 32},
		{"10.0.0.0", 8},
		{"203.0.113.96", 21},
		{"2001:db8::1", 48},
		{"2001:db8:abcd:ef01::1", 56},
		{"192.0.2.1", 0},
	} {
		cs := MustNew(netip.MustParseAddr(tc.addr), tc.src)
		got, err := Decode(cs.Encode())
		if err != nil {
			t.Fatalf("%s/%d: %v", tc.addr, tc.src, err)
		}
		if got != cs {
			t.Fatalf("%s/%d: round trip %+v != %+v", tc.addr, tc.src, got, cs)
		}
	}
}

func TestDecodeZeroOption(t *testing.T) {
	got, err := Decode(Zero().Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsZero() {
		t.Fatalf("zero option decoded as %+v", got)
	}
}

func TestDecodeRejectsTrailingBits(t *testing.T) {
	opt := dnswire.Option{
		Code: dnswire.OptionCodeECS,
		// /24 with a fourth address byte implied by... actually /24 with
		// nonzero bits inside the third byte beyond bit 20.
		Data: []byte{0, 1, 20, 0, 192, 0, 0x2F},
	}
	if _, err := Decode(opt); err != ErrTrailingBits {
		t.Fatalf("got %v, want ErrTrailingBits", err)
	}
	cs, err := DecodeLenient(opt)
	if err != nil {
		t.Fatalf("lenient: %v", err)
	}
	// /20 keeps the top 4 bits of the third byte: 0x2F → 0x20.
	if cs.Addr != netip.MustParseAddr("192.0.32.0") {
		t.Fatalf("lenient masked = %s", cs.Addr)
	}
}

func TestDecodeRejectsBadLengths(t *testing.T) {
	cases := []struct {
		data []byte
		err  error
	}{
		{[]byte{0, 1, 24}, ErrShortOption},
		{[]byte{0, 1, 24, 0, 192, 0}, ErrAddressLength},       // 2 bytes for /24
		{[]byte{0, 1, 24, 0, 192, 0, 2, 1}, ErrAddressLength}, // 4 bytes for /24
		{[]byte{0, 3, 24, 0, 192, 0, 2}, ErrBadFamily},
		{[]byte{0, 1, 33, 0, 192, 0, 2, 1, 9}, ErrPrefixTooLong},
		{[]byte{0, 1, 24, 40, 192, 0, 2}, ErrScopeTooLong},
		{[]byte{0, 0, 8, 0, 10}, ErrMissingFamily},
	}
	for i, c := range cases {
		_, err := Decode(dnswire.Option{Code: dnswire.OptionCodeECS, Data: c.data})
		if err != c.err {
			t.Errorf("case %d: got %v, want %v", i, err, c.err)
		}
	}
}

func TestDecodeLenientTruncatesLongAddress(t *testing.T) {
	opt := dnswire.Option{
		Code: dnswire.OptionCodeECS,
		Data: []byte{0, 1, 24, 0, 192, 0, 2, 99}, // extra byte
	}
	cs, err := DecodeLenient(opt)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Addr != netip.MustParseAddr("192.0.2.0") {
		t.Fatalf("addr = %s", cs.Addr)
	}
}

func TestCovers(t *testing.T) {
	cs := MustNew(netip.MustParseAddr("192.0.2.0"), 24)
	cases := []struct {
		addr string
		bits int
		want bool
	}{
		{"192.0.2.99", 24, true},
		{"192.0.3.99", 24, false},
		{"192.0.3.99", 16, true},
		{"192.0.2.1", 0, true},
		{"10.9.9.9", 0, true}, // scope 0 covers the family
		{"2001:db8::1", 24, false},
		{"2001:db8::1", 0, false}, // wrong family
	}
	for _, c := range cases {
		if got := cs.Covers(netip.MustParseAddr(c.addr), c.bits); got != c.want {
			t.Errorf("Covers(%s, %d) = %v, want %v", c.addr, c.bits, got, c.want)
		}
	}
}

func TestCoversUnmapsClient(t *testing.T) {
	cs := MustNew(netip.MustParseAddr("192.0.2.0"), 24)
	if !cs.Covers(netip.MustParseAddr("::ffff:192.0.2.50"), 24) {
		t.Fatal("4-in-6 client not covered")
	}
}

func TestScopedPrefix(t *testing.T) {
	cs := MustNew(netip.MustParseAddr("192.0.2.213"), 24).WithScope(16)
	if got := cs.ScopedPrefix(); got != netip.MustParsePrefix("192.0.0.0/16") {
		t.Fatalf("ScopedPrefix = %s", got)
	}
	if got := cs.Prefix(); got != netip.MustParsePrefix("192.0.2.0/24") {
		t.Fatalf("Prefix = %s", got)
	}
}

func TestClampScope(t *testing.T) {
	if ClampScope(24, 16) != 16 {
		t.Error("scope shorter than source must pass through")
	}
	if ClampScope(24, 32) != 24 {
		t.Error("scope longer than source must clamp to source")
	}
	if ClampScope(24, 24) != 24 {
		t.Error("equal scope must pass through")
	}
}

func TestValidateQuery(t *testing.T) {
	cs := MustNew(netip.MustParseAddr("192.0.2.0"), 24)
	if err := ValidateQuery(cs); err != nil {
		t.Fatalf("valid query option rejected: %v", err)
	}
	if err := ValidateQuery(cs.WithScope(24)); err != ErrScopeInQuery {
		t.Fatalf("got %v, want ErrScopeInQuery", err)
	}
}

func TestIsRoutable(t *testing.T) {
	cases := []struct {
		addr string
		bits int
		want bool
	}{
		{"127.0.0.1", 32, false},
		{"127.0.0.0", 24, false},
		{"169.254.252.0", 24, false},
		{"10.0.0.0", 8, false},
		{"192.168.1.0", 24, false},
		{"0.0.0.0", 0, false},
		{"192.0.2.0", 24, true},
		{"203.0.113.0", 24, true},
		{"2001:db8::", 48, true},
		{"fe80::", 64, false},
	}
	for _, c := range cases {
		cs := MustNew(netip.MustParseAddr(c.addr), c.bits)
		if got := cs.IsRoutable(); got != c.want {
			t.Errorf("IsRoutable(%s/%d) = %v, want %v", c.addr, c.bits, got, c.want)
		}
	}
	if Zero().IsRoutable() {
		t.Error("zero option must not be routable")
	}
}

func TestAttachStripFromMessage(t *testing.T) {
	m := dnswire.NewQuery(1, "example.com.", dnswire.TypeA)
	if _, present, _ := FromMessage(m); present {
		t.Fatal("phantom ECS option")
	}
	cs := MustNew(netip.MustParseAddr("198.51.100.77"), 24)
	Attach(m, cs)
	got, present, err := FromMessage(m)
	if err != nil || !present {
		t.Fatalf("FromMessage after Attach: %v %v", present, err)
	}
	if got != cs {
		t.Fatalf("got %+v, want %+v", got, cs)
	}
	// Attach must survive a wire round trip.
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	back, err := dnswire.Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	got2, present, err := FromMessage(back)
	if err != nil || !present || got2 != cs {
		t.Fatalf("wire round trip: %+v %v %v", got2, present, err)
	}
	if !Strip(back) {
		t.Fatal("Strip found nothing")
	}
	if _, present, _ := FromMessage(back); present {
		t.Fatal("option survived Strip")
	}
	if Strip(m) != true {
		t.Fatal("strip on original")
	}
	if Strip(m) {
		t.Fatal("second Strip should find nothing")
	}
}

func TestMaskAddr(t *testing.T) {
	cases := []struct {
		in   string
		bits int
		want string
	}{
		{"192.0.2.213", 24, "192.0.2.0"},
		{"192.0.2.213", 25, "192.0.2.128"},
		{"192.0.2.213", 32, "192.0.2.213"},
		{"192.0.2.213", 0, "0.0.0.0"},
		{"2001:db8:f00d::1", 48, "2001:db8:f00d::"},
		{"::ffff:192.0.2.213", 24, "192.0.2.0"},
	}
	for _, c := range cases {
		got := MaskAddr(netip.MustParseAddr(c.in), c.bits)
		if got != netip.MustParseAddr(c.want) {
			t.Errorf("MaskAddr(%s, %d) = %s, want %s", c.in, c.bits, got, c.want)
		}
	}
}

// Property: for any IPv4 address and prefix length, encode→decode is the
// identity and the decoded option covers the original address at the
// source prefix.
func TestQuickEncodeDecodeIPv4(t *testing.T) {
	f := func(a, b, c, d byte, bits uint8) bool {
		src := int(bits) % 33
		addr := netip.AddrFrom4([4]byte{a, b, c, d})
		cs := MustNew(addr, src)
		got, err := Decode(cs.Encode())
		if err != nil || got != cs {
			return false
		}
		return got.Covers(addr, src)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: masking is idempotent and monotone (masking to fewer bits of a
// masked address equals masking the original to fewer bits).
func TestQuickMaskProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		var raw [4]byte
		rng.Read(raw[:])
		addr := netip.AddrFrom4(raw)
		b1 := rng.Intn(33)
		b2 := rng.Intn(b1 + 1)
		m1 := MaskAddr(addr, b1)
		if MaskAddr(m1, b1) != m1 {
			t.Fatalf("mask not idempotent at /%d for %s", b1, addr)
		}
		if MaskAddr(m1, b2) != MaskAddr(addr, b2) {
			t.Fatalf("mask not monotone: %s /%d /%d", addr, b1, b2)
		}
	}
}

func TestFamilyStringAndWidth(t *testing.T) {
	if FamilyIPv4.String() != "IPv4" || FamilyIPv6.String() != "IPv6" || FamilyNone.String() != "none" {
		t.Error("Family.String misbehaves")
	}
	if Family(9).MaxPrefix() != 0 {
		t.Error("unknown family width must be 0")
	}
}

func TestClientSubnetString(t *testing.T) {
	cs := MustNew(netip.MustParseAddr("192.0.2.0"), 24).WithScope(16)
	if cs.String() != "192.0.2.0/24/16" {
		t.Fatalf("String = %q", cs.String())
	}
	if Zero().String() != "none/0/0" {
		t.Fatalf("zero String = %q", Zero().String())
	}
}
