// Package mapping runs the user-to-edge-server mapping-quality
// experiments of §8.1 and §8.3: the Table 2 non-routable-prefix probe
// against a Google-like authoritative, and the RIPE-Atlas-style source
// prefix length sweeps against CDN-1 and CDN-2 (Figures 6 and 7). The
// Atlas platform is replaced by a fleet of synthetic probes spread over
// the world topology, and TCP handshake latency by the geographic
// round-trip model.
package mapping

import (
	"fmt"
	"math/rand"
	"net/netip"

	"ecsdns/internal/cdn"
	"ecsdns/internal/ecsopt"
	"ecsdns/internal/geo"
	"ecsdns/internal/stats"
)

// Fleet is the set of measurement probes (the RIPE Atlas substitute).
type Fleet struct {
	Addrs []netip.Addr
}

// NewFleet samples n probe addresses from the world, population-
// weighted, mirroring the paper's random selection of 800 Atlas probes
// across 174 countries.
func NewFleet(world *geo.Internet, n int, seed int64) *Fleet {
	rng := rand.New(rand.NewSource(seed))
	f := &Fleet{Addrs: make([]netip.Addr, n)}
	for i := range f.Addrs {
		f.Addrs[i] = world.RandomClient(rng)
	}
	return f
}

// SweepPoint is the measurement for one source prefix length.
type SweepPoint struct {
	PrefixLen int
	// ConnectMs holds one modeled TCP-handshake latency per probe
	// (median of the paper's three downloads; the model is
	// deterministic, so one sample represents the median).
	ConnectMs []float64
	// UniqueFirstAnswers counts distinct first answer addresses across
	// the fleet — the paper's proxy for whether the CDN is doing
	// proximity mapping at this prefix length.
	UniqueFirstAnswers int
	// ZeroScopeAnswers counts responses whose ECS scope was zero
	// (CDN-2's told-you-nothing fallback signal).
	ZeroScopeAnswers int
}

// CDF returns the empirical distribution of connect latencies.
func (p SweepPoint) CDF() *stats.CDF { return stats.NewCDF(p.ConnectMs) }

// PrefixSweep queries the policy once per probe and prefix length,
// attaching ECS derived from the probe's address truncated to the given
// length, exactly as the paper drives its lab machine with Atlas-derived
// prefixes. resolverAddr is the query source (the lab machine).
func PrefixSweep(world *geo.Internet, policy *cdn.Policy, fleet *Fleet, resolverAddr netip.Addr, lens []int) []SweepPoint {
	out := make([]SweepPoint, 0, len(lens))
	for _, l := range lens {
		pt := SweepPoint{PrefixLen: l}
		unique := map[netip.Addr]bool{}
		for _, probe := range fleet.Addrs {
			cs, err := ecsopt.New(probe, l)
			if err != nil {
				continue
			}
			res := policy.Select(cdn.MapQuery{ECS: cs, HasECS: true, Resolver: resolverAddr})
			if len(res.Edges) == 0 {
				continue
			}
			first := res.Edges[0]
			unique[first.Addr] = true
			probeLoc, ok := world.Locate(probe)
			if !ok {
				continue
			}
			pt.ConnectMs = append(pt.ConnectMs, geo.RTTMillis(probeLoc, first.Loc))
			if res.UsedECS && res.Scope == 0 {
				pt.ZeroScopeAnswers++
			}
			if !res.UsedECS {
				pt.ZeroScopeAnswers++
			}
		}
		pt.UniqueFirstAnswers = len(unique)
		out = append(out, pt)
	}
	return out
}

// TableRow is one line of the Table 2 reproduction.
type TableRow struct {
	Label       string
	FirstAnswer netip.Addr
	RTTMillis   float64
	Location    string
}

// UnroutableProbes are the ECS options of Table 2, in paper order. The
// nil entry means "no ECS option".
func UnroutableProbes(labAddr netip.Addr) []struct {
	Label string
	ECS   *ecsopt.ClientSubnet
} {
	own := ecsopt.MustNew(labAddr, 24)
	lo32 := ecsopt.MustNew(netip.MustParseAddr("127.0.0.1"), 32)
	lo24 := ecsopt.MustNew(netip.MustParseAddr("127.0.0.0"), 24)
	ll24 := ecsopt.MustNew(netip.MustParseAddr("169.254.252.0"), 24)
	return []struct {
		Label string
		ECS   *ecsopt.ClientSubnet
	}{
		{"None", nil},
		{"/24 of src addr", &own},
		{"127.0.0.1/32", &lo32},
		{"127.0.0.0/24", &lo24},
		{"169.254.252.0/24", &ll24},
	}
}

// UnroutableTable reproduces Table 2: five direct queries to a
// Google-like authoritative from the lab machine, varying the ECS
// option, reporting the first answer, its modeled RTT from the lab, and
// its geolocation.
func UnroutableTable(world *geo.Internet, policy *cdn.Policy, labAddr netip.Addr) []TableRow {
	labLoc, ok := world.Locate(labAddr)
	if !ok {
		panic(fmt.Sprintf("mapping: lab address %s not locatable", labAddr))
	}
	rows := make([]TableRow, 0, 5)
	for _, probe := range UnroutableProbes(labAddr) {
		q := cdn.MapQuery{Resolver: labAddr}
		if probe.ECS != nil {
			q.ECS = *probe.ECS
			q.HasECS = true
		}
		res := policy.Select(q)
		if len(res.Edges) == 0 {
			continue
		}
		first := res.Edges[0]
		rows = append(rows, TableRow{
			Label:       probe.Label,
			FirstAnswer: first.Addr,
			RTTMillis:   geo.RTTMillis(labLoc, first.Loc),
			Location:    first.Loc.City,
		})
	}
	return rows
}

// AnswerSetOverlap reports how many answer addresses two mapping results
// share — used to verify that unroutable prefixes produce disjoint sets,
// as the paper observes.
func AnswerSetOverlap(a, b []cdn.Edge) int {
	seen := map[netip.Addr]bool{}
	for _, e := range a {
		seen[e.Addr] = true
	}
	n := 0
	for _, e := range b {
		if seen[e.Addr] {
			n++
		}
	}
	return n
}
