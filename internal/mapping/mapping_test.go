package mapping

import (
	"net/netip"
	"testing"

	"ecsdns/internal/cdn"
	"ecsdns/internal/geo"
	"ecsdns/internal/stats"
)

func world() *geo.Internet {
	return geo.Build(geo.Config{Seed: 9, NumASes: 200, BlocksPerAS: 2})
}

func TestFleetSpreadAndDeterminism(t *testing.T) {
	w := world()
	f := NewFleet(w, 400, 1)
	if len(f.Addrs) != 400 {
		t.Fatalf("fleet size = %d", len(f.Addrs))
	}
	countries := map[string]bool{}
	for _, a := range f.Addrs {
		loc, ok := w.Locate(a)
		if !ok {
			t.Fatalf("probe %s unlocatable", a)
		}
		countries[loc.Country] = true
	}
	if len(countries) < 15 {
		t.Fatalf("fleet covers only %d countries", len(countries))
	}
	g := NewFleet(w, 400, 1)
	for i := range f.Addrs {
		if f.Addrs[i] != g.Addrs[i] {
			t.Fatal("fleet not deterministic")
		}
	}
}

func TestCDN1SweepShapeMatchesFigure6(t *testing.T) {
	w := world()
	policy := cdn.NewCDN1(w)
	fleet := NewFleet(w, 400, 2)
	lab := w.AddrInCity(geo.CityIndex("Cleveland"), 0, 3)
	pts := PrefixSweep(w, policy, fleet, lab, []int{16, 20, 23, 24})
	byLen := map[int]SweepPoint{}
	for _, p := range pts {
		byLen[p.PrefixLen] = p
	}
	// /24: many unique answers (proximity mapping); the paper saw 400
	// unique for 800 probes.
	if byLen[24].UniqueFirstAnswers < 20 {
		t.Fatalf("/24 unique answers = %d, want many", byLen[24].UniqueFirstAnswers)
	}
	// Shorter prefixes collapse to the small central set (5–14 in the
	// paper).
	for _, l := range []int{16, 20, 23} {
		if byLen[l].UniqueFirstAnswers > 14 {
			t.Fatalf("/%d unique answers = %d, want ≤ 14", l, byLen[l].UniqueFirstAnswers)
		}
	}
	// The latency cliff: median connect time at /24 must be far below
	// /23, and /23 ≈ /16 (shortening further has no effect).
	med24 := stats.Median(byLen[24].ConnectMs)
	med23 := stats.Median(byLen[23].ConnectMs)
	med16 := stats.Median(byLen[16].ConnectMs)
	if med24*1.5 > med23 {
		t.Fatalf("no cliff between /24 (%.0f ms) and /23 (%.0f ms)", med24, med23)
	}
	if diff := med23 - med16; diff > 15 && diff < -15 {
		t.Fatalf("/23 (%.0f) and /16 (%.0f) should be comparable", med23, med16)
	}
}

func TestCDN2SweepShapeMatchesFigure7(t *testing.T) {
	w := world()
	policy := cdn.NewCDN2(w)
	fleet := NewFleet(w, 400, 3)
	lab := w.AddrInCity(geo.CityIndex("Cleveland"), 0, 3)
	pts := PrefixSweep(w, policy, fleet, lab, []int{16, 20, 21, 24})
	byLen := map[int]SweepPoint{}
	for _, p := range pts {
		byLen[p.PrefixLen] = p
	}
	// /20 and /16 collapse to a single resolver-proximal answer with
	// scope 0.
	for _, l := range []int{16, 20} {
		if byLen[l].UniqueFirstAnswers != 1 {
			t.Fatalf("/%d unique answers = %d, want 1", l, byLen[l].UniqueFirstAnswers)
		}
		if byLen[l].ZeroScopeAnswers != len(byLen[l].ConnectMs) {
			t.Fatalf("/%d zero-scope answers = %d/%d", l, byLen[l].ZeroScopeAnswers, len(byLen[l].ConnectMs))
		}
	}
	// /21 and /24 map by proximity (the paper saw 41–42 answers).
	for _, l := range []int{21, 24} {
		if byLen[l].UniqueFirstAnswers < 20 {
			t.Fatalf("/%d unique answers = %d, want many", l, byLen[l].UniqueFirstAnswers)
		}
	}
	// /21 and /24 quality is the same; /20 is dramatically worse.
	med21 := stats.Median(byLen[21].ConnectMs)
	med24 := stats.Median(byLen[24].ConnectMs)
	med20 := stats.Median(byLen[20].ConnectMs)
	if med21 > med24*1.2+5 || med24 > med21*1.2+5 {
		t.Fatalf("/21 (%.0f ms) and /24 (%.0f ms) should match", med21, med24)
	}
	if med24*1.5 > med20 {
		t.Fatalf("no cliff between /21+ (%.0f ms) and /20 (%.0f ms)", med24, med20)
	}
}

func TestUnroutableTableMatchesTable2(t *testing.T) {
	w := world()
	policy := cdn.NewGoogleLike(w)
	lab := w.AddrInCity(geo.CityIndex("Cleveland"), 0, 3)
	rows := UnroutableTable(w, policy, lab)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	byLabel := map[string]TableRow{}
	for _, r := range rows {
		byLabel[r.Label] = r
	}
	none := byLabel["None"]
	own := byLabel["/24 of src addr"]
	// Baseline mappings are nearby (the paper: Chicago, 35 ms).
	if none.RTTMillis > 80 || own.RTTMillis > 80 {
		t.Fatalf("baseline RTTs too high: none=%.0f own=%.0f", none.RTTMillis, own.RTTMillis)
	}
	// Unroutable prefixes map far away (155 ms Switzerland, 285 ms South
	// Africa in the paper). At least two of the three must be much worse
	// than baseline, and all must differ from the baseline answer.
	far := 0
	for _, label := range []string{"127.0.0.1/32", "127.0.0.0/24", "169.254.252.0/24"} {
		r := byLabel[label]
		if r.FirstAnswer == none.FirstAnswer {
			t.Fatalf("%s returned the baseline answer", label)
		}
		if r.RTTMillis > none.RTTMillis*2 {
			far++
		}
	}
	if far < 2 {
		t.Fatalf("only %d unroutable probes mapped far away", far)
	}
}

func TestAnswerSetOverlap(t *testing.T) {
	mk := func(addrs ...string) []cdn.Edge {
		out := make([]cdn.Edge, len(addrs))
		for i, a := range addrs {
			out[i] = cdn.Edge{Addr: netip.MustParseAddr(a)}
		}
		return out
	}
	a := mk("192.0.2.1", "192.0.2.2")
	b := mk("192.0.2.2", "192.0.2.3")
	if got := AnswerSetOverlap(a, b); got != 1 {
		t.Fatalf("overlap = %d", got)
	}
	if got := AnswerSetOverlap(a, nil); got != 0 {
		t.Fatalf("overlap with empty = %d", got)
	}
}
