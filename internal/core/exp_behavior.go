package core

import (
	"fmt"
	"net/netip"
	"time"

	"ecsdns/internal/authority"
	"ecsdns/internal/dnswire"
	"ecsdns/internal/passive"
	"ecsdns/internal/report"
	"ecsdns/internal/resolver"
	"ecsdns/internal/scanner"
)

func init() {
	register(Experiment{
		ID:    "section5",
		Title: "Discovering ECS-enabled resolvers: passive vs active (§5)",
		Run:   runSection5,
	})
	register(Experiment{
		ID:    "table1",
		Title: "ECS source prefix lengths (Table 1)",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "section6_1",
		Title: "ECS probing strategies (§6.1)",
		Run:   runSection61,
	})
	register(Experiment{
		ID:    "section6_3",
		Title: "ECS caching behavior classes (§6.3)",
		Run:   runSection63,
	})
}

// behaviorStudy builds the ecosystem, drives the CDN workload and the
// scan once, and is shared by the section5/table1/section6_1 runs.
func behaviorStudy(cfg Config) (*Study, scanner.Result) {
	s := BuildStudy(cfg)
	s.DriveCDNWorkload()
	res := s.RunScan()
	return s, res
}

func runSection5(cfg Config) (*Report, error) {
	s, scanRes := behaviorStudy(cfg)
	logs := passive.GroupByResolver(s.CDNLogs.All())
	passiveSet := passive.ECSResolverSet(logs)

	// Split the scan's ECS egresses into Google and non-Google, as the
	// paper compares only the non-Google sets.
	googleSet := map[netip.Addr]bool{}
	for _, r := range s.GoogleFleet {
		googleSet[r.Addr()] = true
	}
	activeNonGoogle := map[netip.Addr]bool{}
	activeGoogle := 0
	for a := range scanRes.ECSEgress {
		if googleSet[a] {
			activeGoogle++
		} else {
			activeNonGoogle[a] = true
		}
	}
	d := passive.CompareDiscovery(passiveSet, activeNonGoogle)

	rep := &Report{ID: "section5", Title: "Passive vs active discovery of ECS resolvers"}
	sc := cfg.Scale
	rep.AddMetric("passive ECS resolvers (CDN dataset)", 4147*sc, float64(d.PassiveECS), "resolvers")
	rep.AddMetric("active non-Google ECS egresses (scan)", 278*sc, float64(d.ActiveECS), "resolvers")
	rep.AddMetric("scan egresses also seen passively", 234*sc, float64(d.Overlap), "resolvers")
	rep.AddMetric("Google egress addresses found by scan", 1256*sc, float64(activeGoogle), "resolvers")
	rep.AddMetric("open ingress resolvers responding", float64(len(s.OpenForwarders)), float64(len(scanRes.Responding)), "forwarders")

	t := &report.Table{
		Title:   "Discovery comparison (scaled ×" + fmt.Sprintf("%.2f", sc) + ")",
		Headers: []string{"view", "ECS resolvers"},
	}
	t.AddRow("passive (CDN day)", d.PassiveECS)
	t.AddRow("active scan, non-Google", d.ActiveECS)
	t.AddRow("overlap", d.Overlap)
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		"passive observation discovers an order of magnitude more ECS resolvers than the scan, and most scan-discovered resolvers are also seen passively, matching §5")
	return rep, nil
}

func runTable1(cfg Config) (*Report, error) {
	s, _ := behaviorStudy(cfg)

	cdnRows := passive.PrefixLengthTable(passive.GroupByResolver(s.CDNLogs.All()))
	scanRows := passive.PrefixLengthTable(passive.GroupByResolver(scanZoneECSLogs(s)))

	rep := &Report{ID: "table1", Title: "ECS source prefix lengths by resolver"}
	for _, set := range []struct {
		name string
		rows []passive.PrefixLengthRow
	}{
		{"Scan dataset", scanRows},
		{"CDN dataset", cdnRows},
	} {
		t := &report.Table{Title: set.name, Headers: []string{"source prefix profile", "# resolvers"}}
		for _, r := range set.rows {
			t.AddRow(r.Label, r.Count)
		}
		rep.Tables = append(rep.Tables, t)
	}

	// Headline shares for the shape assertions.
	rep.AddMetric("CDN: 32/jammed share of resolvers", 3002.0/4147, share(cdnRows, "32/jammed last byte"), "fraction")
	rep.AddMetric("CDN: /24 share of resolvers", 757.0/4147, share(cdnRows, "24"), "fraction")
	rep.AddMetric("scan: /24 share of resolvers", 1384.0/1534, share(scanRows, "24"), "fraction")
	rep.AddMetric("scan: 32/jammed share of resolvers", 130.0/1534, share(scanRows, "32/jammed last byte"), "fraction")
	rep.Notes = append(rep.Notes,
		"the jammed-last-byte /32 prefixes dominate the CDN view (the dominant Chinese AS) while the scan view is /24-dominated (Google), as in Table 1")
	return rep, nil
}

// scanZoneECSLogs returns the scan-authority records from egress
// resolvers (excluding the prober/forwarder noise: every record counts,
// the grouping is per egress).
func scanZoneECSLogs(s *Study) []authority.LogRecord {
	return s.ScanLogs.All()
}

func share(rows []passive.PrefixLengthRow, label string) float64 {
	total, hit := 0, 0
	for _, r := range rows {
		total += r.Count
		if r.Label == label {
			hit += r.Count
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

func runSection61(cfg Config) (*Report, error) {
	s, _ := behaviorStudy(cfg)
	logs := passive.GroupByResolver(s.CDNLogs.All())
	census := passive.ProbingCensus(logs, 20*time.Second)

	rep := &Report{ID: "section6_1", Title: "Probing strategies of ECS resolvers"}
	sc := cfg.Scale
	rep.AddMetric("ECS on all queries", 3382*sc, float64(census[passive.PatternAllQueries]), "resolvers")
	rep.AddMetric("specific hostnames, caching disabled", 258*sc, float64(census[passive.PatternHostnamesNoCache]), "resolvers")
	rep.AddMetric("30-min loopback probes", 32*sc, float64(census[passive.PatternInterval]), "resolvers")
	rep.AddMetric("ECS on cache miss", 88*sc, float64(census[passive.PatternOnMiss]), "resolvers")
	rep.AddMetric("no discernible pattern", 387*sc, float64(census[passive.PatternUnclassified]), "resolvers")

	t := &report.Table{Title: "Probing-pattern census", Headers: []string{"pattern", "# resolvers"}}
	for _, p := range []passive.ProbePattern{
		passive.PatternAllQueries, passive.PatternHostnamesNoCache,
		passive.PatternInterval, passive.PatternOnMiss,
		passive.PatternUnclassified, passive.PatternNoECS,
	} {
		t.AddRow(p.String(), census[p])
	}
	rep.Tables = append(rep.Tables, t)

	// The root-server violation count (DITL analysis): replay a root
	// trace with a few violating resolvers.
	violators := runRootTrace(s, cfg)
	rep.AddMetric("resolvers sending ECS to the root", 15*sc, float64(violators), "resolvers")
	return rep, nil
}

// runRootTrace wires a root zone onto the study and sends it traffic
// from a mix of compliant resolvers and SendECSToRoot violators.
func runRootTrace(s *Study, cfg Config) int {
	rootLogs := &scanner.LogBuffer{}
	rootAddr := s.World.AddrInCity(0, 77, 53)
	root := authority.NewServer(authority.Config{
		Addr: rootAddr,
		Now:  s.Net.Clock().Now,
	})
	rz := authority.NewZone(".", 518400)
	rz.SetWildcard(dnswire.TypeA, &dnswire.ARData{Addr: netip.MustParseAddr("192.0.2.1")})
	root.AddZone(rz)
	root.SetLog(rootLogs.Append)
	s.Net.Register(rootAddr, root)
	s.Directory.Add(".", rootAddr)

	nViol := scaled(15, cfg.Scale)
	nOK := scaled(100, cfg.Scale)
	for i := 0; i < nViol+nOK; i++ {
		prof := resolver.GoogleLikeProfile()
		if i < nViol {
			prof.SendECSToRoot = true
		}
		r := s.addResolver(40000+i, prof, false)
		q := dnswire.NewQuery(uint16(i+1), dnswire.Name(fmt.Sprintf("host%d.arpa.", i)), dnswire.TypeA)
		q.EDNS = dnswire.NewEDNS()
		client := s.clientFor(r, 0)
		s.Net.Exchange(client, r.Addr(), q) //nolint:errcheck
	}
	return passive.RootECSViolators(rootLogs.All())
}

func runSection63(cfg Config) (*Report, error) {
	s := BuildStudy(cfg)
	subjects := s.BuildCachingPopulation()
	census, err := s.ProbeCachingBehavior(subjects)
	if err != nil {
		return nil, err
	}

	rep := &Report{ID: "section6_3", Title: "Cache-scope compliance classes"}
	sc := cfg.Scale
	rep.AddMetric("correct behavior", 76*sc, float64(census[scanner.CachingCorrect]), "resolvers")
	rep.AddMetric("ignore scope entirely", 103*sc, float64(census[scanner.CachingIgnoresScope]), "resolvers")
	rep.AddMetric("accept+cache prefixes >/24", 15*sc, float64(census[scanner.CachingAcceptsLong]), "resolvers")
	rep.AddMetric("cap prefixes and scopes at /22", 8*sc, float64(census[scanner.CachingCaps22]), "resolvers")
	rep.AddMetric("private-prefix misconfiguration", 1, float64(census[scanner.CachingPrivatePrefix]), "resolvers")

	t := &report.Table{Title: "Caching-behavior census", Headers: []string{"class", "# resolvers"}}
	for _, c := range []scanner.CachingClass{
		scanner.CachingCorrect, scanner.CachingIgnoresScope,
		scanner.CachingAcceptsLong, scanner.CachingCaps22,
		scanner.CachingPrivatePrefix, scanner.CachingUnknown,
	} {
		t.AddRow(c.String(), census[c])
	}
	rep.Tables = append(rep.Tables, t)
	rep.Notes = append(rep.Notes,
		"over half the probed resolvers reuse cached ECS answers for any client, matching the paper's headline §6.3 finding")
	return rep, nil
}
