package core

import (
	"fmt"

	"ecsdns/internal/cachesim"
	"ecsdns/internal/ecscache"
	"ecsdns/internal/report"
	"ecsdns/internal/traces"
)

func init() {
	register(Experiment{
		ID:    "ext_scale",
		Title: "§7 extension: cache blow-up and eviction pressure at 10–100× client populations",
		Run:   runExtScale,
	})
}

// runExtScale re-runs the §7 cache experiments at client populations
// one and two orders of magnitude beyond the paper's trace, which its
// authors could not collect: the name space stays fixed (the same
// service universe) while clients, their subnets, and query volume grow
// together, modeling the same resolver serving 10× and 100× the users.
// Each population is replayed three ways — the unbounded liveSet model
// (Blowup), the standalone LRU model (BoundedReplay) and the real
// sharded ecscache under the same fixed capacity — so the models
// cross-validate against the serving implementation at every scale.
func runExtScale(cfg Config) (*Report, error) {
	rep := &Report{ID: "ext_scale", Title: "Cache cost at 10–100× client populations"}
	t := &report.Table{
		Title:   "Fixed-capacity cache under growing client populations",
		Headers: []string{"population ×", "clients", "queries", "blow-up ×", "high-water", "hit% (real)", "evict/100q (real)", "evict/100q (model)"},
	}

	// The capacity an operator provisioned for the 1× population: the
	// bounded runs hold it fixed while the population grows around it.
	capacity := scaled(8192, cfg.Scale)

	base := traces.DefaultAllNames
	base.Seed = cfg.Seed

	var blowup1, blowup100 float64
	var evict1, evict100 float64
	var modelEvict100 float64
	for _, mult := range []int{1, 10, 100} {
		f := cfg.Scale * float64(mult)
		tc := base
		tc.Clients = scaled(base.Clients, f)
		tc.SubnetsV4 = scaled(base.SubnetsV4, f)
		tc.SubnetsV6 = scaled(base.SubnetsV6, f)
		tc.Queries = scaled(base.Queries, f)
		tr := traces.GenerateAllNames(tc)

		blow := cachesim.Blowup(tr.Records, 0)
		actual := cachesim.CacheReplay(tr.Records, ecscache.Config{
			Mode:               ecscache.HonorScope,
			ClampScopeToSource: true,
			Shards:             8,
			MaxEntries:         capacity,
		})
		model := cachesim.BoundedReplay(tr.Records, capacity, true)

		t.AddRow(fmt.Sprintf("%d", mult), tc.Clients, len(tr.Records),
			blow.Factor(), int(actual.Stats.HighWater),
			actual.HitRate(), actual.EvictionRate(), model.EvictionRate())

		switch mult {
		case 1:
			blowup1, evict1 = blow.Factor(), actual.EvictionRate()
		case 100:
			blowup100, evict100 = blow.Factor(), actual.EvictionRate()
			modelEvict100 = model.EvictionRate()
		}
	}
	rep.Tables = append(rep.Tables, t)

	rep.AddMetric("blow-up factor at 1× population", 4.3, blowup1, "×")
	rep.AddMetric("blow-up factor at 100× population", 0, blowup100, "×")
	rep.AddMetric("premature evictions/100q at 1×, fixed capacity", 0, evict1, "evict/100q")
	rep.AddMetric("premature evictions/100q at 100×, fixed capacity", 0, evict100, "evict/100q")
	rep.AddMetric("real-cache vs model evictions at 100×", modelEvict100, evict100, "evict/100q")
	rep.Notes = append(rep.Notes,
		"a capacity sized for today's population collapses under 10–100× growth once ECS fragments entries: premature evictions climb by orders of magnitude while the blow-up factor keeps growing with the client pool — §7's provisioning warning, measured at scales the paper could not collect",
		"the real sharded cache and the standalone LRU model agree on eviction pressure at every population, cross-validating cachesim against the serving implementation")
	return rep, nil
}
