// Package core is the paper's reproduction harness: one Experiment per
// table, figure, and quantitative section finding, each running the full
// simulated ecosystem and producing the rows/series the paper reports
// next to the paper's own numbers.
package core

import (
	"fmt"
	"sort"
	"strings"

	"ecsdns/internal/report"
)

// Config controls an experiment run.
type Config struct {
	// Scale sizes populations and trace volumes relative to the paper's
	// datasets (1.0 = paper scale). The defaults keep every experiment
	// in seconds on a laptop.
	Scale float64
	// Seed drives every random choice; identical configs produce
	// identical reports.
	Seed int64
	// Faults, when non-empty, is a netem.ParseFaultPlan spec (e.g.
	// "loss=0.05,latency=20ms") applied globally to the study network,
	// so every experiment can be rerun under degraded conditions. The
	// fault RNG is seeded from Seed: identical configs still produce
	// identical reports. An invalid spec panics in BuildStudy; validate
	// with netem.ParseFaultPlan first when the spec is user input.
	Faults string
	// Upstreams, Hedge, Breaker, and Ladder parameterize the
	// ext_resilience experiment: the authoritative mirror count behind
	// the upstream pool (0 = 3) and the pool's hedging, circuit
	// breaker, and EDNS payload ladder specs in upstreams.Parse*
	// syntax (empty = the pool defaults, with hedging on).
	Upstreams int
	Hedge     string
	Breaker   string
	Ladder    string
}

// DefaultConfig is the scale the test suite and benchmarks run at.
func DefaultConfig() Config {
	return Config{Scale: 0.1, Seed: 1}
}

// Metric is one headline number: what the paper reports next to what we
// measured.
type Metric struct {
	Name     string
	Paper    float64
	Measured float64
	Unit     string
}

// Report is an experiment's output.
type Report struct {
	ID      string
	Title   string
	Tables  []*report.Table
	Metrics []Metric
	Notes   []string
}

// AddMetric appends a headline comparison.
func (r *Report) AddMetric(name string, paper, measured float64, unit string) {
	r.Metrics = append(r.Metrics, Metric{Name: name, Paper: paper, Measured: measured, Unit: unit})
}

// Metric returns the named metric, or false.
func (r *Report) Metric(name string) (Metric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// String renders the full report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s ==\n", r.ID, r.Title)
	if len(r.Metrics) > 0 {
		t := &report.Table{Headers: []string{"metric", "paper", "measured", "unit"}}
		for _, m := range r.Metrics {
			t.AddRow(m.Name, m.Paper, m.Measured, m.Unit)
		}
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	for _, t := range r.Tables {
		sb.WriteString(t.String())
		sb.WriteByte('\n')
	}
	for _, n := range r.Notes {
		sb.WriteString("note: " + n + "\n")
	}
	return sb.String()
}

// Experiment reproduces one paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(cfg Config) (*Report, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("core: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment, sorted by id.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// IDs returns the registered experiment ids.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, e := range all {
		ids[i] = e.ID
	}
	return ids
}
