package core

import (
	"fmt"
	"strings"
	"testing"
)

// testConfig runs at a smaller scale than the default to keep the suite
// fast while preserving shapes.
func testConfig() Config { return Config{Scale: 0.05, Seed: 1} }

func runExperiment(t *testing.T, id string, cfg Config) *Report {
	t.Helper()
	e, ok := Get(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	rep, err := e.Run(cfg)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if rep.ID != id {
		t.Fatalf("report ID = %s", rep.ID)
	}
	if rep.String() == "" {
		t.Fatal("empty report")
	}
	return rep
}

// metric fetches a metric value or fails.
func metric(t *testing.T, rep *Report, name string) Metric {
	t.Helper()
	m, ok := rep.Metric(name)
	if !ok {
		t.Fatalf("%s: metric %q missing", rep.ID, name)
	}
	return m
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ext_adaptive", "ext_ecsfraction", "ext_evictions", "ext_labstudy", "ext_resilience", "ext_scale",
		"fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"section4", "section5", "section6_1", "section6_3", "table1", "table2",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d experiments: %v", len(got), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry = %v, want %v", got, want)
		}
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("Get accepted unknown id")
	}
}

func TestSection5Shape(t *testing.T) {
	rep := runExperiment(t, "section5", testConfig())
	passive := metric(t, rep, "passive ECS resolvers (CDN dataset)")
	active := metric(t, rep, "active non-Google ECS egresses (scan)")
	overlap := metric(t, rep, "scan egresses also seen passively")
	// Passive discovers an order of magnitude more resolvers.
	if passive.Measured < 5*active.Measured {
		t.Errorf("passive %v not ≫ active %v", passive.Measured, active.Measured)
	}
	// Most scan-discovered resolvers are seen passively.
	if overlap.Measured < 0.6*active.Measured {
		t.Errorf("overlap %v too small vs active %v", overlap.Measured, active.Measured)
	}
	if overlap.Measured > active.Measured {
		t.Errorf("overlap exceeds active set")
	}
}

func TestTable1Shape(t *testing.T) {
	rep := runExperiment(t, "table1", testConfig())
	jam := metric(t, rep, "CDN: 32/jammed share of resolvers")
	v24 := metric(t, rep, "CDN: /24 share of resolvers")
	scan24 := metric(t, rep, "scan: /24 share of resolvers")
	if jam.Measured < 0.55 || jam.Measured > 0.85 {
		t.Errorf("CDN jammed share = %.2f, paper 0.72", jam.Measured)
	}
	if v24.Measured < 0.08 || v24.Measured > 0.30 {
		t.Errorf("CDN /24 share = %.2f, paper 0.18", v24.Measured)
	}
	if scan24.Measured < 0.70 {
		t.Errorf("scan /24 share = %.2f, paper 0.90", scan24.Measured)
	}
	if jam.Measured < v24.Measured {
		t.Error("CDN view must be jammed-/32-dominated")
	}
}

func TestSection61Shape(t *testing.T) {
	rep := runExperiment(t, "section6_1", testConfig())
	all := metric(t, rep, "ECS on all queries")
	host := metric(t, rep, "specific hostnames, caching disabled")
	interval := metric(t, rep, "30-min loopback probes")
	miss := metric(t, rep, "ECS on cache miss")
	root := metric(t, rep, "resolvers sending ECS to the root")
	// The all-queries class dominates by an order of magnitude.
	if all.Measured < 5*(host.Measured+interval.Measured+miss.Measured) {
		t.Errorf("all-queries class not dominant: %v vs %v/%v/%v",
			all.Measured, host.Measured, interval.Measured, miss.Measured)
	}
	within := func(m Metric, lo, hi float64) {
		if m.Measured < m.Paper*lo || m.Measured > m.Paper*hi+3 {
			t.Errorf("%s = %v, paper-scaled %v", m.Name, m.Measured, m.Paper)
		}
	}
	within(all, 0.7, 1.3)
	within(host, 0.6, 1.6)
	within(interval, 0.3, 2.0)
	if root.Measured < 1 {
		t.Error("no root violators found")
	}
}

func TestSection63Shape(t *testing.T) {
	rep := runExperiment(t, "section6_3", testConfig())
	correct := metric(t, rep, "correct behavior")
	ignore := metric(t, rep, "ignore scope entirely")
	long := metric(t, rep, "accept+cache prefixes >/24")
	cap22 := metric(t, rep, "cap prefixes and scopes at /22")
	private := metric(t, rep, "private-prefix misconfiguration")
	// The census is exact at cohort granularity because classification
	// is deterministic: every resolver lands in its ground-truth class.
	sc := testConfig().Scale
	exact := func(m Metric, paperCount int) {
		if int(m.Measured) != scaled(paperCount, sc) {
			t.Errorf("%s = %v, want %d", m.Name, m.Measured, scaled(paperCount, sc))
		}
	}
	exact(ignore, 103)
	exact(correct, 76)
	exact(long, 15)
	exact(cap22, 8)
	if private.Measured != 1 {
		t.Errorf("private-prefix = %v, want 1", private.Measured)
	}
	if ignore.Measured <= correct.Measured {
		t.Error("ignore-scope class must outnumber correct class")
	}
}

func TestFig1Shape(t *testing.T) {
	rep := runExperiment(t, "fig1", testConfig())
	med := metric(t, rep, "median blow-up, TTL 20 s")
	max20 := metric(t, rep, "max blow-up, TTL 20 s")
	max40 := metric(t, rep, "max blow-up, TTL 40 s")
	max60 := metric(t, rep, "max blow-up, TTL 60 s")
	if med.Measured < 2.5 || med.Measured > 6 {
		t.Errorf("median blow-up = %v, paper 4", med.Measured)
	}
	if max20.Measured < 8 {
		t.Errorf("max blow-up @20s = %v, paper 15.95", max20.Measured)
	}
	if !(max20.Measured < max40.Measured && max40.Measured < max60.Measured) {
		t.Errorf("blow-up not increasing with TTL: %v %v %v",
			max20.Measured, max40.Measured, max60.Measured)
	}
}

func TestFig2Shape(t *testing.T) {
	rep := runExperiment(t, "fig2", testConfig())
	full := metric(t, rep, "blow-up at 100% clients")
	ten := metric(t, rep, "blow-up at 10% clients")
	if full.Measured < 3 || full.Measured > 6 {
		t.Errorf("blow-up at 100%% = %v, paper 4.3", full.Measured)
	}
	if ten.Measured >= full.Measured {
		t.Error("blow-up must grow with client population")
	}
}

func TestFig3Shape(t *testing.T) {
	rep := runExperiment(t, "fig3", testConfig())
	plain := metric(t, rep, "hit rate without ECS, all clients")
	ecs := metric(t, rep, "hit rate with ECS, all clients")
	if plain.Measured < 60 || plain.Measured > 90 {
		t.Errorf("plain hit rate = %v%%, paper 76%%", plain.Measured)
	}
	if ecs.Measured < 15 || ecs.Measured > 45 {
		t.Errorf("ECS hit rate = %v%%, paper 30%%", ecs.Measured)
	}
	if ecs.Measured*2 > plain.Measured {
		t.Error("ECS must cut the hit rate by more than half")
	}
}

func TestTable2Shape(t *testing.T) {
	rep := runExperiment(t, "table2", testConfig())
	base := metric(t, rep, "baseline RTT (no ECS)")
	worst := metric(t, rep, "worst unroutable-prefix RTT")
	if worst.Measured < 3*base.Measured {
		t.Errorf("unroutable penalty too small: %v vs %v", worst.Measured, base.Measured)
	}
}

func TestFig4Fig5Shape(t *testing.T) {
	for _, tc := range []struct {
		id               string
		below, on, above float64
		tolBelow, tolOn  float64
	}{
		{"fig4", 8.0, 1.3, 90.7, 3, 3},
		{"fig5", 7.8, 19.5, 72.7, 3, 7},
	} {
		rep := runExperiment(t, tc.id, testConfig())
		below := metric(t, rep, "combinations below diagonal (ECS hurts)")
		on := metric(t, rep, "combinations on diagonal (ECS no help)")
		above := metric(t, rep, "combinations above diagonal (ECS helps)")
		if d := below.Measured - tc.below; d > tc.tolBelow || d < -tc.tolBelow {
			t.Errorf("%s below = %.1f%%, paper %.1f%%", tc.id, below.Measured, tc.below)
		}
		if d := on.Measured - tc.on; d > tc.tolOn || d < -tc.tolOn {
			t.Errorf("%s on = %.1f%%, paper %.1f%%", tc.id, on.Measured, tc.on)
		}
		if above.Measured < tc.above-8 {
			t.Errorf("%s above = %.1f%%, paper %.1f%%", tc.id, above.Measured, tc.above)
		}
	}
}

func TestFig6Fig7Shape(t *testing.T) {
	for _, tc := range []struct{ id string }{{"fig6"}, {"fig7"}} {
		rep := runExperiment(t, tc.id, testConfig())
		cliff := metric(t, rep, "cliff ratio")
		if cliff.Measured < 3 {
			t.Errorf("%s cliff ratio = %v, want dramatic degradation", tc.id, cliff.Measured)
		}
	}
}

func TestFig8Shape(t *testing.T) {
	rep := runExperiment(t, "fig8", testConfig())
	e1 := metric(t, rep, "TCP handshake to misdirected edge E1")
	e2 := metric(t, rep, "TCP handshake to correct edge E2")
	penalty := metric(t, rep, "flattening penalty (apex vs direct www)")
	saved := metric(t, rep, "penalty removed by passing ECS on the flattened leg")
	if e1.Measured < 2*e2.Measured {
		t.Errorf("E1 %vms not clearly worse than E2 %vms", e1.Measured, e2.Measured)
	}
	if penalty.Measured < 200 {
		t.Errorf("penalty = %vms, want hundreds of ms", penalty.Measured)
	}
	if saved.Measured <= 0 {
		t.Errorf("mitigation saved %vms, want > 0", saved.Measured)
	}
}

func TestReportRendering(t *testing.T) {
	rep := runExperiment(t, "table2", testConfig())
	s := rep.String()
	for _, want := range []string{"table2", "paper", "measured", "127.0.0.1/32"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestDeterministicReports(t *testing.T) {
	a := runExperiment(t, "fig4", testConfig())
	b := runExperiment(t, "fig4", testConfig())
	if a.String() != b.String() {
		t.Fatal("identical configs produced different reports")
	}
}

func TestScaledHelper(t *testing.T) {
	if scaled(100, 0.1) != 10 {
		t.Error("scaled(100, 0.1)")
	}
	if scaled(1, 0.01) != 1 {
		t.Error("scaled must floor at 1 for nonzero counts")
	}
	if scaled(0, 0.5) != 0 {
		t.Error("scaled(0) must be 0")
	}
}

func TestExtAdaptiveShape(t *testing.T) {
	rep := runExperiment(t, "ext_adaptive", testConfig())
	std := metric(t, rep, "mean conveyed bits, standard resolver")
	ad := metric(t, rep, "mean conveyed bits, adaptive resolver")
	if std.Measured != 24 {
		t.Errorf("standard resolver conveyed %v bits", std.Measured)
	}
	if ad.Measured > 17 {
		t.Errorf("adaptive resolver conveyed %v bits, want ≈16", ad.Measured)
	}
	upStd := metric(t, rep, "upstream queries, standard")
	upAd := metric(t, rep, "upstream queries, adaptive")
	if diff := upAd.Measured - upStd.Measured; diff > upStd.Measured*0.1 {
		t.Errorf("adaptive upstream load %v vs %v", upAd.Measured, upStd.Measured)
	}
}

func TestExtECSFractionShape(t *testing.T) {
	rep := runExperiment(t, "ext_ecsfraction", testConfig())
	at0 := metric(t, rep, "blow-up with no ECS deployment")
	at100 := metric(t, rep, "blow-up with universal ECS deployment")
	if at0.Measured != 1 {
		t.Errorf("blow-up without ECS = %v, want exactly 1", at0.Measured)
	}
	if at100.Measured < 3 {
		t.Errorf("blow-up at full deployment = %v, want ≈4", at100.Measured)
	}
	// Monotonicity across the table rows.
	rows := rep.Tables[0].Rows
	prev := -1.0
	for _, r := range rows {
		var f float64
		if _, err := fmt.Sscanf(r[1], "%f", &f); err != nil {
			t.Fatalf("bad row %v", r)
		}
		if f < prev {
			t.Fatalf("blow-up not monotone in deployment: %v", rows)
		}
		prev = f
	}
}

func TestExtLabStudyShape(t *testing.T) {
	rep := runExperiment(t, "ext_labstudy", testConfig())
	m := metric(t, rep, "profiles classified as ground truth")
	if m.Measured != m.Paper {
		t.Errorf("lab study matched %v/%v profiles", m.Measured, m.Paper)
	}
}

func TestExtEvictionsShape(t *testing.T) {
	rep := runExperiment(t, "ext_evictions", testConfig())
	plain := metric(t, rep, "capacity for <0.5 evictions/100q, plain")
	ecs := metric(t, rep, "capacity for <0.5 evictions/100q, with ECS")
	ratio := metric(t, rep, "ECS/plain capacity ratio")
	if plain.Measured <= 0 || ecs.Measured <= 0 {
		t.Fatalf("thresholds not found: plain=%v ecs=%v", plain.Measured, ecs.Measured)
	}
	if ecs.Measured <= plain.Measured {
		t.Fatal("ECS cache must need more capacity than the plain cache")
	}
	// The capacity ratio tracks the fig2 blow-up factor (paper: 4.3).
	if ratio.Measured < 2 || ratio.Measured > 8 {
		t.Errorf("capacity ratio = %v, want the fig2 blow-up scale", ratio.Measured)
	}
}

func TestExtScaleShape(t *testing.T) {
	rep := runExperiment(t, "ext_scale", testConfig())
	b1 := metric(t, rep, "blow-up factor at 1× population")
	b100 := metric(t, rep, "blow-up factor at 100× population")
	e1 := metric(t, rep, "premature evictions/100q at 1×, fixed capacity")
	e100 := metric(t, rep, "premature evictions/100q at 100×, fixed capacity")
	cross := metric(t, rep, "real-cache vs model evictions at 100×")
	// The blow-up factor keeps growing with the client pool (fig2's
	// curve does not flatten), so 100× must exceed 1×.
	if b100.Measured <= b1.Measured {
		t.Errorf("blow-up at 100× (%v) not above 1× (%v)", b100.Measured, b1.Measured)
	}
	// A capacity provisioned for 1× must collapse under 100× clients.
	if e100.Measured <= e1.Measured {
		t.Errorf("eviction rate at 100× (%v) not above 1× (%v)", e100.Measured, e1.Measured)
	}
	if e100.Measured < 1 {
		t.Errorf("eviction rate at 100× = %v/100q; fixed capacity should be under real pressure", e100.Measured)
	}
	// Cross-validation: the real cache and the standalone LRU model
	// must agree on the order of eviction pressure.
	if cross.Paper > 0 && (cross.Measured > 3*cross.Paper || cross.Paper > 3*cross.Measured) {
		t.Errorf("real cache evictions %v vs model %v disagree beyond 3×", cross.Measured, cross.Paper)
	}
}

func TestSection4Shape(t *testing.T) {
	rep := runExperiment(t, "section4", testConfig())
	dominant := metric(t, rep, "CDN: dominant-AS share")
	v6 := metric(t, rep, "CDN: IPv6 share")
	v6Clients := metric(t, rep, "all-names: v6 client share")
	if dominant.Measured < 0.55 || dominant.Measured > 0.85 {
		t.Errorf("dominant-AS share = %.2f, paper 0.74", dominant.Measured)
	}
	if v6.Measured < 0.01 || v6.Measured > 0.10 {
		t.Errorf("CDN IPv6 share = %.2f, paper 0.035", v6.Measured)
	}
	if v6Clients.Measured < 0.4 || v6Clients.Measured > 0.6 {
		t.Errorf("all-names v6 client share = %.2f, paper 0.51", v6Clients.Measured)
	}
}
