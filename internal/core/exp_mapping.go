package core

import (
	"fmt"
	"time"

	"ecsdns/internal/cdn"
	"ecsdns/internal/flatten"
	"ecsdns/internal/geo"
	"ecsdns/internal/hiddensim"
	"ecsdns/internal/mapping"
	"ecsdns/internal/report"
	"ecsdns/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "table2",
		Title: "Mapping quality with non-routable ECS prefixes (Table 2)",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Hidden vs recursive resolver distances, MP resolvers (Figure 4)",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Hidden vs recursive resolver distances, non-MP resolvers (Figure 5)",
		Run:   runFig5,
	})
	register(Experiment{
		ID:    "fig6",
		Title: "Mapping quality vs source prefix length, CDN-1 (Figure 6)",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Mapping quality vs source prefix length, CDN-2 (Figure 7)",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "CNAME flattening penalty (Figure 8)",
		Run:   runFig8,
	})
}

func mappingWorld(cfg Config) *geo.Internet {
	return geo.Build(geo.Config{Seed: cfg.Seed, NumASes: 400, BlocksPerAS: 2})
}

func runTable2(cfg Config) (*Report, error) {
	w := mappingWorld(cfg)
	policy := cdn.NewGoogleLike(w)
	lab := w.AddrInCity(geo.CityIndex("Cleveland"), 0, 3)
	rows := mapping.UnroutableTable(w, policy, lab)

	rep := &Report{ID: "table2", Title: "Authoritative answers for unroutable ECS prefixes"}
	t := &report.Table{
		Title:   "Responses to queries from Cleveland (Table 2)",
		Headers: []string{"ECS prefix", "first answer", "RTT (ms)", "location"},
	}
	var baseline, worst float64
	for _, r := range rows {
		t.AddRow(r.Label, r.FirstAnswer.String(), r.RTTMillis, r.Location)
		if r.Label == "None" {
			baseline = r.RTTMillis
		}
		if r.RTTMillis > worst {
			worst = r.RTTMillis
		}
	}
	rep.Tables = append(rep.Tables, t)
	rep.AddMetric("baseline RTT (no ECS)", 35, baseline, "ms")
	rep.AddMetric("worst unroutable-prefix RTT", 285, worst, "ms")
	rep.AddMetric("worst/baseline penalty", 285.0/35, worst/baseline, "×")
	rep.Notes = append(rep.Notes,
		"unroutable ECS prefixes are taken at face value and mapped across the globe, while no-ECS and own-prefix queries map nearby, as in Table 2")
	return rep, nil
}

func hiddenReport(id, title string, combos []hiddensim.Combo, paper hiddensim.Fractions) *Report {
	f := hiddensim.Analyze(combos)
	rep := &Report{ID: id, Title: title}
	rep.AddMetric("combinations below diagonal (ECS hurts)", paper.Below*100, f.Below*100, "%")
	rep.AddMetric("combinations on diagonal (ECS no help)", paper.On*100, f.On*100, "%")
	rep.AddMetric("combinations above diagonal (ECS helps)", paper.Above*100, f.Above*100, "%")

	worst := hiddensim.WorstPenalty(combos)
	rep.AddMetric("worst hidden-resolver detour", 12000, worst.FH, "km")

	// A coarse 2-D density table stands in for the hexbin plot.
	h := hiddensim.HexbinOf(combos, 2500)
	t := &report.Table{
		Title:   "Distance scatter density (bins of 2500 km; FH vertical, FR horizontal)",
		Headers: []string{"FH\\FR", "0-2.5k", "2.5-5k", "5-7.5k", "7.5-10k", ">10k"},
	}
	cell := func(fhBin, frBin int) int {
		n := 0
		for k, c := range h.Counts {
			fh, fr := k[0], k[1]
			if fh >= 4 {
				fh = 4
			}
			if fr >= 4 {
				fr = 4
			}
			if fh == fhBin && fr == frBin {
				n += c
			}
		}
		return n
	}
	rowName := []string{"0-2.5k", "2.5-5k", "5-7.5k", "7.5-10k", ">10k"}
	for fh := 0; fh < 5; fh++ {
		row := []interface{}{rowName[fh]}
		for fr := 0; fr < 5; fr++ {
			row = append(row, cell(fh, fr))
		}
		t.AddRow(row...)
	}
	rep.Tables = append(rep.Tables, t)
	return rep
}

func runFig4(cfg Config) (*Report, error) {
	c := hiddensim.MPConfig()
	c.Seed = cfg.Seed + 40
	c.Combos = scaled(725000, cfg.Scale/10) // 1/10 of paper at Scale 1
	rep := hiddenReport("fig4", "MP resolver combinations (725K in the paper)",
		hiddensim.Generate(c), hiddensim.Fractions{Below: 0.080, On: 0.013, Above: 0.907})
	rep.Notes = append(rep.Notes,
		"in 8% of combinations the hidden resolver is farther from the forwarder than the egress resolver: ECS delivers a worse location than no ECS at all")
	return rep, nil
}

func runFig5(cfg Config) (*Report, error) {
	c := hiddensim.NonMPConfig()
	c.Seed = cfg.Seed + 50
	c.Combos = scaled(217000, cfg.Scale/10)
	rep := hiddenReport("fig5", "Non-MP resolver combinations (217K in the paper)",
		hiddensim.Generate(c), hiddensim.Fractions{Below: 0.078, On: 0.195, Above: 0.727})
	rep.Notes = append(rep.Notes,
		"the non-MP population shows the Beijing/Shanghai/Guangzhou structure: ~1000–2000 km modes and a 19.5% equidistant band")
	return rep, nil
}

func prefixSweepReport(id string, w *geo.Internet, policy *cdn.Policy, lens []int, cliffHigh, cliffLow int, cfg Config) *Report {
	fleet := mapping.NewFleet(w, scaled(800, cfg.Scale*10), cfg.Seed+60)
	lab := w.AddrInCity(geo.CityIndex("Cleveland"), 0, 3)
	pts := mapping.PrefixSweep(w, policy, fleet, lab, lens)

	rep := &Report{ID: id, Title: fmt.Sprintf("Time-to-connect by source prefix length (%s)", policy.D.Name)}
	series := map[string]*stats.CDF{}
	byLen := map[int]mapping.SweepPoint{}
	t := &report.Table{
		Title:   "Unique first answers per prefix length",
		Headers: []string{"source prefix", "unique answers", "median connect (ms)"},
	}
	for _, p := range pts {
		series[fmt.Sprintf("/%02d", p.PrefixLen)] = p.CDF()
		byLen[p.PrefixLen] = p
		t.AddRow(fmt.Sprintf("/%d", p.PrefixLen), p.UniqueFirstAnswers, stats.Median(p.ConnectMs))
	}
	rep.Tables = append(rep.Tables,
		report.SeriesTable("Connect-time distribution (ms)", "ms", series, []float64{0.25, 0.5, 0.75, 0.9}),
		t)
	rep.AddMetric(fmt.Sprintf("median connect at /%d", cliffHigh), 0, stats.Median(byLen[cliffHigh].ConnectMs), "ms")
	rep.AddMetric(fmt.Sprintf("median connect at /%d (below threshold)", cliffLow), 0, stats.Median(byLen[cliffLow].ConnectMs), "ms")
	rep.AddMetric("cliff ratio", 0,
		stats.Median(byLen[cliffLow].ConnectMs)/stats.Median(byLen[cliffHigh].ConnectMs), "×")
	return rep
}

func runFig6(cfg Config) (*Report, error) {
	w := mappingWorld(cfg)
	rep := prefixSweepReport("fig6", w, cdn.NewCDN1(w),
		[]int{16, 17, 18, 19, 20, 21, 22, 23, 24}, 24, 23, cfg)
	rep.Notes = append(rep.Notes,
		"CDN-1 does proximity mapping only at /24: shortening the prefix to /23 collapses the answer set to a handful of central edges and ruins latency, with no further effect from /22 down to /16 (Figure 6)")
	return rep, nil
}

func runFig7(cfg Config) (*Report, error) {
	w := mappingWorld(cfg)
	rep := prefixSweepReport("fig7", w, cdn.NewCDN2(w),
		[]int{20, 21, 22, 23, 24}, 21, 20, cfg)
	rep.Notes = append(rep.Notes,
		"CDN-2 honors ECS down to /21 with identical quality from /21 to /24; at /20 it falls back to resolver-based mapping with scope 0 (Figure 7)")
	return rep, nil
}

func runFig8(cfg Config) (*Report, error) {
	fc := flatten.DefaultConfig
	fc.Seed = cfg.Seed + 80
	res, err := flatten.Run(fc)
	if err != nil {
		return nil, err
	}
	rep := &Report{ID: "fig8", Title: "CNAME flattening timeline"}
	t := &report.Table{Title: "Access timeline (Figure 8)", Headers: []string{"step", "elapsed (ms)"}}
	for _, s := range res.Steps {
		t.AddRow(s.Name, float64(s.Elapsed)/float64(time.Millisecond))
	}
	rep.Tables = append(rep.Tables, t)
	rep.AddMetric("TCP handshake to misdirected edge E1", 125, float64(res.E1RTT)/float64(time.Millisecond), "ms")
	rep.AddMetric("TCP handshake to correct edge E2", 45, float64(res.E2RTT)/float64(time.Millisecond), "ms")
	rep.AddMetric("flattening penalty (apex vs direct www)", 650, float64(res.Penalty)/float64(time.Millisecond), "ms")

	// The mitigation run.
	fc.PassECSOnFlatten = true
	fixed, err := flatten.Run(fc)
	if err != nil {
		return nil, err
	}
	saved := float64(res.Penalty-fixed.Penalty) / float64(time.Millisecond)
	rep.AddMetric("penalty removed by passing ECS on the flattened leg", 0, saved, "ms")
	rep.AddMetric("mitigated E1 handshake", 45, float64(fixed.E1RTT)/float64(time.Millisecond), "ms")
	rep.Notes = append(rep.Notes,
		"flattening without ECS maps the apex by the DNS provider's location, costing an HTTP redirect and a far-away first fetch; passing ECS on the backend resolution removes the penalty (§8.4)")
	return rep, nil
}
