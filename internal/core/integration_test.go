package core

import (
	"bytes"
	"testing"

	"ecsdns/internal/ecsopt"
	"ecsdns/internal/netem"
)

// TestScanUnderCapture runs the active scan with a wire capture attached
// — the simulation equivalent of the paper running tcpdump on its
// scanner — and validates that every captured exchange decodes, that the
// ECS options on the wire are well-formed, and that the capture
// round-trips.
func TestScanUnderCapture(t *testing.T) {
	s := BuildStudy(Config{Scale: 0.02, Seed: 3})

	var buf bytes.Buffer
	capture, err := netem.NewCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	detach := capture.Attach(s.Net)
	res := s.RunScan()
	detach()

	if capture.Err() != nil {
		t.Fatal(capture.Err())
	}
	if capture.Records() == 0 {
		t.Fatal("scan produced no captured exchanges")
	}
	exchanges, err := netem.ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(exchanges)) != capture.Records() {
		t.Fatalf("read %d exchanges, wrote %d", len(exchanges), capture.Records())
	}

	ecsQueries := 0
	for i, ex := range exchanges {
		if len(ex.Query.Questions) != 1 {
			t.Fatalf("exchange %d: %d questions", i, len(ex.Query.Questions))
		}
		if ex.Query.Question() != ex.Response.Question() {
			t.Fatalf("exchange %d: question mismatch", i)
		}
		cs, present, err := ecsopt.FromMessage(ex.Query)
		if err != nil {
			t.Fatalf("exchange %d: malformed wire ECS: %v", i, err)
		}
		if present && !cs.IsZero() {
			ecsQueries++
			if err := ecsopt.ValidateQuery(cs); err != nil {
				t.Fatalf("exchange %d: query-side ECS invalid: %v", i, err)
			}
		}
	}
	if ecsQueries == 0 {
		t.Fatal("no ECS queries observed on the wire during the scan")
	}
	// The scan found ECS egresses, so some responses must carry scopes.
	if len(res.ECSEgress) == 0 {
		t.Fatal("scan found no ECS egresses")
	}
	scoped := 0
	for _, ex := range exchanges {
		if cs, present, err := ecsopt.FromMessage(ex.Response); err == nil && present && cs.ScopePrefix > 0 {
			scoped++
		}
	}
	if scoped == 0 {
		t.Fatal("no scoped ECS responses on the wire")
	}
}
