package core

import (
	"fmt"
	"net/netip"
	"sort"
	"time"

	"ecsdns/internal/authority"
	"ecsdns/internal/dnswire"
	"ecsdns/internal/geo"
	"ecsdns/internal/netem"
	"ecsdns/internal/report"
	"ecsdns/internal/upstreams"
)

// ext_resilience measures what the paper's measurement infrastructure
// had to assume: that queries keep getting answered while individual
// upstreams blackout, lose half their packets, or fragment large
// responses. The upstream pool (failover + hedging + the EDNS payload
// ladder) is run under each condition and its answer rate, latency
// tail, and escalation counters tabulated.

func init() {
	register(Experiment{
		ID:    "ext_resilience",
		Title: "robustness extension: upstream failover, hedging, and the truncation→TCP ladder under faults",
		Run:   runExtResilience,
	})
}

// resilienceRun is one pool-under-faults execution.
type resilienceRun struct {
	queries  int
	answered int
	durs     []time.Duration
	counters upstreams.Counters
}

func (r resilienceRun) rate() float64 {
	if r.queries == 0 {
		return 0
	}
	return 100 * float64(r.answered) / float64(r.queries)
}

func (r resilienceRun) percentile(p float64) time.Duration {
	if len(r.durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), r.durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return sorted[idx]
}

// runResilience executes one fault condition: mirrors of one zone
// behind a fresh pool on a fresh fabric, a fault-free warm phase, then
// the faulted query run. global applies to every exchange; dark, when
// non-zero, blacks out mirror 0 for the whole faulted phase.
func runResilience(cfg Config, mirrors, queries int, hedge upstreams.HedgeConfig,
	breaker upstreams.BreakerConfig, ladder upstreams.LadderConfig,
	global netem.FaultPlan, dark bool) (resilienceRun, error) {
	w := geo.Build(geo.Config{Seed: cfg.Seed, NumASes: 120, BlocksPerAS: 1})
	n := netem.New(w)
	answerAddr := netip.MustParseAddr("192.0.2.80")
	ups := make([]upstreams.Upstream, mirrors)
	var mirrorAddrs []netip.Addr
	for i := 0; i < mirrors; i++ {
		addr := w.AddrInCity(i%len(geo.Cities), 30+i, 53)
		auth := authority.NewServer(authority.Config{
			Addr: addr, ECSEnabled: true,
			Scope: authority.ScopeFixed(24), Now: n.Clock().Now,
		})
		z := authority.NewZone("resilient.example.", 20)
		z.SetWildcard(dnswire.TypeA, &dnswire.ARData{Addr: answerAddr})
		auth.AddZone(z)
		n.Register(addr, auth)
		mirrorAddrs = append(mirrorAddrs, addr)
		ups[i] = upstreams.Upstream{Addr: addr}
	}
	pool, err := upstreams.New(upstreams.Config{
		Upstreams: ups, Transport: n, Now: n.Clock().Now,
		Hedge: hedge, Breaker: breaker, Ladder: ladder,
	})
	if err != nil {
		return resilienceRun{}, err
	}
	client := w.AddrInCity(geo.CityIndex("Dublin"), 7, 10)
	name := func(i int) dnswire.Name {
		return dnswire.MustParseName(fmt.Sprintf("r%04d.resilient.example.", i))
	}

	// Fault-free warmup seeds the RTT sampler and health scores.
	const warm = 20
	for i := 0; i < warm; i++ {
		q := dnswire.NewQuery(uint16(i+1), name(i), dnswire.TypeA)
		q.EDNS = dnswire.NewEDNS()
		if resp, _, err := pool.Exchange(client, q); err != nil || resp.RCode != dnswire.RCodeNoError {
			return resilienceRun{}, fmt.Errorf("ext_resilience: warm query %d failed: %v %v", i, resp, err)
		}
	}

	start := n.Clock().Now()
	n.SetFaults(global, cfg.Seed)
	if dark {
		n.SetNodeFaults(mirrorAddrs[0], netem.FaultPlan{Blackouts: []netem.Window{
			{Start: start, End: start.Add(24 * time.Hour)},
		}}, cfg.Seed+1)
	}

	out := resilienceRun{queries: queries}
	for i := 0; i < queries; i++ {
		q := dnswire.NewQuery(uint16(1000+i), name(i), dnswire.TypeA)
		q.EDNS = dnswire.NewEDNS()
		resp, d, err := pool.Exchange(client, q)
		out.durs = append(out.durs, d)
		if err == nil && resp.RCode == dnswire.RCodeNoError && len(resp.Answers) > 0 {
			out.answered++
		}
	}
	pool.Wait()
	out.counters = pool.Counters()
	if !out.counters.Balanced() {
		return out, fmt.Errorf("ext_resilience: pool accounting leak: %+v", out.counters)
	}
	return out, nil
}

func runExtResilience(cfg Config) (*Report, error) {
	mirrors := cfg.Upstreams
	if mirrors == 0 {
		mirrors = 3
	}
	if mirrors < 2 {
		return nil, fmt.Errorf("ext_resilience: need at least 2 upstreams, got %d", mirrors)
	}
	hedgeSpec := cfg.Hedge
	if hedgeSpec == "" {
		hedgeSpec = "on"
	}
	hedge, err := upstreams.ParseHedge(hedgeSpec)
	if err != nil {
		return nil, fmt.Errorf("ext_resilience: %v", err)
	}
	breaker, err := upstreams.ParseBreaker(cfg.Breaker)
	if err != nil {
		return nil, fmt.Errorf("ext_resilience: %v", err)
	}
	ladder, err := upstreams.ParseLadder(cfg.Ladder)
	if err != nil {
		return nil, fmt.Errorf("ext_resilience: %v", err)
	}
	queries := scaled(2000, cfg.Scale)

	// Hedging is compared with the breaker off so refusals do not cap
	// the unhedged tail; every other condition runs the full pool.
	noBreaker := upstreams.BreakerConfig{Disabled: true}
	conditions := []struct {
		name   string
		hedge  upstreams.HedgeConfig
		brk    upstreams.BreakerConfig
		global netem.FaultPlan
		dark   bool
	}{
		{name: "clean", hedge: hedge, brk: breaker},
		{name: "one mirror dark", hedge: hedge, brk: breaker, dark: true},
		{name: "50% loss, unhedged", hedge: upstreams.HedgeConfig{}, brk: noBreaker,
			global: netem.FaultPlan{Loss: 0.5}},
		{name: "50% loss, hedged", hedge: upstreams.HedgeConfig{Enabled: true, Percentile: hedge.Percentile, Min: hedge.Min, Max: hedge.Max}, brk: noBreaker,
			global: netem.FaultPlan{Loss: 0.5}},
		{name: "fragmentation storm", hedge: hedge, brk: breaker,
			global: netem.FaultPlan{Payload: 2000, FragLoss: 0.4}},
	}

	rep := &Report{ID: "ext_resilience", Title: "Upstream pool resilience under injected faults"}
	t := &report.Table{
		Title: fmt.Sprintf("Pool of %d mirrors, %d queries per condition", mirrors, queries),
		Headers: []string{"condition", "answered (%)", "p50 (ms)", "p99 (ms)",
			"failovers", "hedges", "ladder steps", "tcp fallbacks", "breaker trips"},
	}
	runs := make(map[string]resilienceRun, len(conditions))
	for _, cond := range conditions {
		run, err := runResilience(cfg, mirrors, queries, cond.hedge, cond.brk, ladder, cond.global, cond.dark)
		if err != nil {
			return nil, err
		}
		runs[cond.name] = run
		c := run.counters
		t.AddRow(cond.name, run.rate(),
			float64(run.percentile(0.50))/float64(time.Millisecond),
			float64(run.percentile(0.99))/float64(time.Millisecond),
			c.Failovers, c.Hedges, c.LadderSteps, c.TCPFallbacks, c.BreakerTrips)
	}
	rep.Tables = append(rep.Tables, t)

	rep.AddMetric("answer rate with one mirror dark", 99, runs["one mirror dark"].rate(), "%")
	rep.AddMetric("answer rate under fragmentation storm", 99, runs["fragmentation storm"].rate(), "%")
	unhedged := runs["50% loss, unhedged"].percentile(0.99)
	hedged := runs["50% loss, hedged"].percentile(0.99)
	speedup := 0.0
	if hedged > 0 {
		speedup = float64(unhedged) / float64(hedged)
	}
	rep.AddMetric("p99 speedup from hedging under 50% loss", 1, speedup, "×")
	rep.Notes = append(rep.Notes,
		"a measurement platform that probes millions of resolvers only works if its own upstream path absorbs blackouts, loss, and fragmentation; the pool keeps the answer rate at the clean level under every single-fault condition and hedging cuts the loss-storm latency tail")
	return rep, nil
}
