package core

import (
	"fmt"
	"net/netip"

	"ecsdns/internal/authority"
	"ecsdns/internal/cachesim"
	"ecsdns/internal/dnswire"
	"ecsdns/internal/geo"
	"ecsdns/internal/netem"
	"ecsdns/internal/report"
	"ecsdns/internal/resolver"
	"ecsdns/internal/scanner"
	"ecsdns/internal/traces"
)

// The ext_* experiments implement the paper's §9 "Limitations & Future
// Work" items that its authors could not run: the adaptive source-prefix
// question, the overall-cache-blow-up-vs-ECS-deployment prediction, and
// the lab study of resolver software behavior.

func init() {
	register(Experiment{
		ID:    "ext_adaptive",
		Title: "§9 extension: adapting source prefix length to authoritative scopes",
		Run:   runExtAdaptive,
	})
	register(Experiment{
		ID:    "ext_ecsfraction",
		Title: "§9 extension: overall cache blow-up vs fraction of ECS responses",
		Run:   runExtECSFraction,
	})
	register(Experiment{
		ID:    "ext_evictions",
		Title: "§7 extension: LRU capacity needed to avoid premature evictions",
		Run:   runExtEvictions,
	})
	register(Experiment{
		ID:    "ext_labstudy",
		Title: "§9 extension: lab classification of resolver software profiles",
		Run:   runExtLabStudy,
	})
}

// runExtAdaptive answers the paper's open question: if the authority
// consistently answers with coarse scopes, does adapting the conveyed
// source prefix down to that scope preserve behavior while shedding
// client bits? We drive an adaptive and a standard resolver with the
// same clients against a /16-scoped authority and compare conveyed bits
// and upstream load.
func runExtAdaptive(cfg Config) (*Report, error) {
	w := geo.Build(geo.Config{Seed: cfg.Seed, NumASes: 200, BlocksPerAS: 2})
	n := netem.New(w)

	authAddr := w.AddrInCity(geo.CityIndex("Frankfurt"), 1, 53)
	logs := &scanner.LogBuffer{}
	auth := authority.NewServer(authority.Config{
		Addr:       authAddr,
		ECSEnabled: true,
		Scope:      authority.ScopeFixed(16), // a coarse-granularity CDN
		Now:        n.Clock().Now,
	})
	z := authority.NewZone("coarse.example.", 60)
	z.SetWildcard(dnswire.TypeA, &dnswire.ARData{Addr: netip.MustParseAddr("192.0.2.10")})
	auth.AddZone(z)
	auth.SetLog(logs.Append)
	n.Register(authAddr, auth)

	dir := resolver.NewDirectory()
	dir.Add("coarse.example.", authAddr)

	type subject struct {
		name string
		res  *resolver.Resolver
	}
	subjects := []subject{
		{"standard /24", nil},
		{"adaptive", nil},
	}
	profiles := []resolver.Profile{resolver.GoogleLikeProfile(), resolver.AdaptiveProfile()}
	for i := range subjects {
		addr := w.AddrInCity(geo.CityIndex("London"), 10+i, 53)
		subjects[i].res = resolver.New(resolver.Config{
			Addr: addr, Transport: n, Now: n.Clock().Now,
			Directory: dir, Profile: profiles[i], Seed: int64(i),
		})
		n.Register(addr, subjects[i].res)
	}

	// Clients spread across many /24s within fewer /16s.
	nClients := scaled(600, cfg.Scale*10)
	t := &report.Table{
		Title:   "Adaptive vs standard source prefixes against a /16-scoped authority",
		Headers: []string{"resolver", "mean conveyed bits", "upstream queries", "cache entries"},
	}
	rep := &Report{ID: "ext_adaptive", Title: "Adaptive source prefix (§9 open question)"}
	var bitsStd, bitsAd float64
	var upStd, upAd int64
	for i, sub := range subjects {
		mark := logs.Len()
		rng := saltRNG(cfg.Seed, 100+i)
		for c := 0; c < nClients; c++ {
			client := w.RandomClient(rng)
			q := dnswire.NewQuery(uint16(c+1), "www.coarse.example.", dnswire.TypeA)
			q.EDNS = dnswire.NewEDNS()
			n.Exchange(client, sub.res.Addr(), q) //nolint:errcheck
		}
		totalBits, ecsQ := 0, 0
		for _, rec := range logs.Since(mark) {
			if rec.QueryHasECS {
				totalBits += int(rec.QueryECS.SourcePrefix)
				ecsQ++
			}
		}
		meanBits := 0.0
		if ecsQ > 0 {
			meanBits = float64(totalBits) / float64(ecsQ)
		}
		_, up := sub.res.Counters()
		entries := sub.res.Cache().HighWater()
		t.AddRow(sub.name, meanBits, up, entries)
		if i == 0 {
			bitsStd, upStd = meanBits, up
		} else {
			bitsAd, upAd = meanBits, up
		}
	}
	rep.Tables = append(rep.Tables, t)
	rep.AddMetric("mean conveyed bits, standard resolver", 24, bitsStd, "bits")
	rep.AddMetric("mean conveyed bits, adaptive resolver", 16, bitsAd, "bits")
	rep.AddMetric("upstream queries, standard", float64(upStd), float64(upStd), "queries")
	rep.AddMetric("upstream queries, adaptive", float64(upStd), float64(upAd), "queries")
	rep.Notes = append(rep.Notes,
		"adapting the source prefix to the authority's scope sheds a third of the conveyed client bits with no change in upstream load or answer granularity — evidence for the §9 proposal")
	return rep, nil
}

// runExtECSFraction extends §7 the way §9 asks: overall cache blow-up as
// a function of the fraction of interactions that involve ECS, predicting
// the cost of growing authoritative-side deployment.
func runExtECSFraction(cfg Config) (*Report, error) {
	base := traces.DefaultAllNames
	base.Seed = cfg.Seed
	tr := traces.GenerateAllNames(base)

	// Group records by SLD so ECS adoption is per-operator, as in
	// reality: an SLD either deploys ECS or does not.
	sldOf := func(name dnswire.Name) dnswire.Name { return name.SLD() }
	slds := map[dnswire.Name]int{}
	for _, r := range tr.Records {
		if _, ok := slds[sldOf(r.Name)]; !ok {
			slds[sldOf(r.Name)] = len(slds)
		}
	}

	rep := &Report{ID: "ext_ecsfraction", Title: "Blow-up vs ECS deployment fraction"}
	t := &report.Table{
		Title:   "Overall cache blow-up vs fraction of SLDs deploying ECS",
		Headers: []string{"% SLDs with ECS", "blow-up factor", "hit rate (%)"},
	}
	var at0, at100 float64
	for _, pct := range []int{0, 25, 50, 75, 100} {
		recs := make([]traces.Record, len(tr.Records))
		copy(recs, tr.Records)
		for i := range recs {
			// SLD index below the threshold ⇒ deploys ECS.
			if slds[sldOf(recs[i].Name)]*100 >= pct*len(slds) {
				recs[i].HasECS = false
				recs[i].Scope = 0
			}
		}
		res := cachesim.Blowup(recs, 0)
		hit := cachesim.HitRate(recs, true)
		t.AddRow(fmt.Sprintf("%d", pct), res.Factor(), hit.Rate())
		if pct == 0 {
			at0 = res.Factor()
		}
		if pct == 100 {
			at100 = res.Factor()
		}
	}
	rep.Tables = append(rep.Tables, t)
	rep.AddMetric("blow-up with no ECS deployment", 1, at0, "×")
	rep.AddMetric("blow-up with universal ECS deployment", 4.3, at100, "×")
	rep.Notes = append(rep.Notes,
		"the overall cache cost scales smoothly with authoritative-side ECS deployment; the paper's §7 numbers are the 100% end of this curve, its §9 asks for exactly this prediction")
	return rep, nil
}

// runExtLabStudy is the §9 "lab-based analysis of popular recursive
// resolver software": every canned behavior profile is probed with the
// §6.3 methodology and its classification and conveyed-prefix behavior
// tabulated — the developer-facing compliance report the paper calls
// for.
func runExtLabStudy(cfg Config) (*Report, error) {
	s := BuildStudy(Config{Scale: 0.01, Seed: cfg.Seed}) // tiny population; we only need the rig
	type labSubject struct {
		name    string
		profile resolver.Profile
	}
	subjects := []labSubject{
		{"compliant (BIND-like)", resolver.CompliantProfile()},
		{"google-like", resolver.GoogleLikeProfile()},
		{"jammed-/32 (dominant AS)", resolver.JammedProfile()},
		{"full-/32", resolver.FullPrefixProfile()},
		{"ignore-scope", resolver.IgnoreScopeProfile()},
		{"long-prefix acceptor", resolver.LongPrefixProfile()},
		{"cap-22", resolver.Cap22Profile()},
		{"private-prefix (PowerDNS bug)", resolver.PrivatePrefixProfile()},
		{"adaptive (§9)", resolver.AdaptiveProfile()},
	}

	rep := &Report{ID: "ext_labstudy", Title: "Lab classification of resolver profiles"}
	t := &report.Table{
		Title:   "Profile → §6.3 classification and conveyed prefix",
		Headers: []string{"software profile", "accepts injection", "classification", "max conveyed bits", "private leak"},
	}
	expected := map[string]scanner.CachingClass{
		"compliant (BIND-like)":         scanner.CachingCorrect,
		"google-like":                   scanner.CachingCorrect,
		"ignore-scope":                  scanner.CachingIgnoresScope,
		"long-prefix acceptor":          scanner.CachingAcceptsLong,
		"cap-22":                        scanner.CachingCaps22,
		"private-prefix (PowerDNS bug)": scanner.CachingPrivatePrefix,
	}
	matches, expectedCount := 0, 0
	vantage := 0
	for i, sub := range subjects {
		r := s.addResolver(60000+i*10, sub.profile, false)
		prober, err := s.classifyProber(r, vantage)
		if err != nil {
			return nil, err
		}
		vantage += 3
		obs, err := prober.Probe()
		if err != nil {
			return nil, err
		}
		class := scanner.Classify(obs)
		t.AddRow(sub.name, prober.CanInject, class.String(), int(obs.MaxConveyedBits), obs.ConveyedPrivate)
		if want, ok := expected[sub.name]; ok {
			expectedCount++
			if class == want {
				matches++
			}
		}
	}
	rep.Tables = append(rep.Tables, t)
	rep.AddMetric("profiles classified as ground truth", float64(expectedCount), float64(matches), "profiles")
	rep.Notes = append(rep.Notes,
		"the §6.3 methodology run in the lab recovers each software profile's behavior class, the tool the paper's §9 says 'would be beneficial to the developer community'")
	return rep, nil
}

// runExtEvictions makes §7's closing argument executable: "large TTL
// values and a diverse client population would result in a large
// increase of the cache size recursive resolvers would need if they were
// to preserve low rates of premature cache evictions." We sweep LRU
// capacities over the all-names trace and find the capacity each cache
// needs to keep premature evictions below 0.5 per 100 queries.
func runExtEvictions(cfg Config) (*Report, error) {
	base := traces.DefaultAllNames
	base.Seed = cfg.Seed
	tr := traces.GenerateAllNames(base)

	rep := &Report{ID: "ext_evictions", Title: "Capacity needed to avoid premature evictions"}
	t := &report.Table{
		Title:   "LRU replay of the all-names trace",
		Headers: []string{"capacity", "plain hit%", "plain evict/100q", "ECS hit%", "ECS evict/100q"},
	}
	capacities := []int{512, 1024, 2048, 4096, 8192, 16384, 32768, 65536}
	needPlain, needECS := 0, 0
	const target = 0.5
	for _, capy := range capacities {
		plain := cachesim.BoundedReplay(tr.Records, capy, false)
		ecs := cachesim.BoundedReplay(tr.Records, capy, true)
		t.AddRow(fmt.Sprintf("%d", capy),
			plain.HitRate(), plain.EvictionRate(),
			ecs.HitRate(), ecs.EvictionRate())
		if needPlain == 0 && plain.EvictionRate() < target {
			needPlain = capy
		}
		if needECS == 0 && ecs.EvictionRate() < target {
			needECS = capy
		}
	}
	rep.Tables = append(rep.Tables, t)
	rep.AddMetric("capacity for <0.5 evictions/100q, plain", 0, float64(needPlain), "entries")
	rep.AddMetric("capacity for <0.5 evictions/100q, with ECS", 0, float64(needECS), "entries")
	ratio := 0.0
	if needPlain > 0 && needECS > 0 {
		ratio = float64(needECS) / float64(needPlain)
	}
	rep.AddMetric("ECS/plain capacity ratio", 4.3, ratio, "×")
	rep.Notes = append(rep.Notes,
		"the capacity a bounded LRU needs to keep premature evictions rare grows by the same factor as the unbounded blow-up of fig2 — §7's operator-cost argument, measured")
	return rep, nil
}
