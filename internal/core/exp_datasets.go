package core

import (
	"net/netip"

	"ecsdns/internal/passive"
	"ecsdns/internal/report"
	"ecsdns/internal/traces"
)

func init() {
	register(Experiment{
		ID:    "section4",
		Title: "Dataset summary statistics (§4)",
		Run:   runSection4,
	})
}

// runSection4 reproduces the paper's §4 dataset descriptions as measured
// properties of the generated ecosystem: population counts, address
// family splits, AS structure (including the dominant AS), and the
// volume/diversity statistics of the resolver-side traces.
func runSection4(cfg Config) (*Report, error) {
	s, scanRes := behaviorStudy(cfg)
	rep := &Report{ID: "section4", Title: "Dataset summaries"}
	sc := cfg.Scale

	// --- CDN dataset ---
	logs := passive.GroupByResolver(s.CDNLogs.All())
	ecsSet := passive.ECSResolverSet(logs)
	v4, v6 := 0, 0
	asOf := map[int]int{} // AS number → ECS resolver count
	for addr := range ecsSet {
		if addr.Is4() {
			v4++
		} else {
			v6++
		}
		if as, ok := s.World.ASOf(addr); ok {
			asOf[as.Number]++
		}
	}
	dominant := 0
	for _, n := range asOf {
		if n > dominant {
			dominant = n
		}
	}
	t := &report.Table{Title: "CDN dataset (one simulated day)", Headers: []string{"statistic", "paper", "measured"}}
	t.AddRow("ECS-enabled non-whitelisted resolvers", scaledStr(4147, sc), len(ecsSet))
	t.AddRow("IPv4 resolver addresses", scaledStr(4002, sc), v4)
	t.AddRow("IPv6 resolver addresses", scaledStr(145, sc), v6)
	t.AddRow("resolvers in the dominant AS", scaledStr(3067, sc), dominant)
	rep.Tables = append(rep.Tables, t)
	rep.AddMetric("CDN: ECS resolvers", 4147*sc, float64(len(ecsSet)), "resolvers")
	rep.AddMetric("CDN: IPv6 share", 145.0/4147, float64(v6)/float64(max(1, len(ecsSet))), "fraction")
	rep.AddMetric("CDN: dominant-AS share", 3067.0/4147, float64(dominant)/float64(max(1, len(ecsSet))), "fraction")

	// --- Scan dataset ---
	countries := map[string]bool{}
	ingressASes := map[int]bool{}
	ecsIngress := 0
	for _, ing := range scanRes.Responding {
		if loc, ok := s.World.Locate(ing); ok {
			countries[loc.Country] = true
		}
		if as, ok := s.World.ASOf(ing); ok {
			ingressASes[as.Number] = true
		}
		for _, eg := range scanRes.IngressToEgress[ing] {
			if scanRes.ECSEgress[eg] {
				ecsIngress++
				break
			}
		}
	}
	t2 := &report.Table{Title: "Scan dataset", Headers: []string{"statistic", "paper", "measured"}}
	t2.AddRow("open ingress resolvers", scaledStr(27430, sc*0.1), len(scanRes.Responding))
	t2.AddRow("ingresses using ECS egresses", scaledStr(15300, sc*0.1), ecsIngress)
	t2.AddRow("ECS egress resolver addresses", scaledStr(1534, sc), len(scanRes.ECSEgress))
	t2.AddRow("ingress countries", "195 (43 in the catalog)", len(countries))
	t2.AddRow("ingress ASes", "7.9K at full scale", len(ingressASes))
	rep.Tables = append(rep.Tables, t2)
	rep.AddMetric("scan: ECS egress addresses", 1534*sc, float64(len(scanRes.ECSEgress)), "resolvers")
	rep.AddMetric("scan: fraction of ingresses on ECS egresses", 15.3/27.43,
		float64(ecsIngress)/float64(max(1, len(scanRes.Responding))), "fraction")

	// --- All-Names resolver dataset ---
	an := traces.GenerateAllNames(allNamesConfig(cfg))
	names := map[string]bool{}
	slds := map[string]bool{}
	subsV4 := map[netip.Addr]bool{}
	subsV6 := map[netip.Addr]bool{}
	for _, r := range an.Records {
		names[string(r.Name)] = true
		slds[string(r.Name.SLD())] = true
	}
	clientsV4, clientsV6 := 0, 0
	for _, c := range an.Clients {
		if c.Is4() {
			clientsV4++
			p, _ := c.Prefix(24)
			subsV4[p.Addr()] = true
		} else {
			clientsV6++
			p, _ := c.Prefix(48)
			subsV6[p.Addr()] = true
		}
	}
	t3 := &report.Table{Title: "All-Names resolver dataset (1/40 scale)", Headers: []string{"statistic", "paper", "measured"}}
	t3.AddRow("A/AAAA interactions", 11100000/40, len(an.Records))
	t3.AddRow("client IP addresses", 76200/40, len(an.Clients))
	t3.AddRow("IPv4 clients", 37400/40, clientsV4)
	t3.AddRow("IPv6 clients", 38800/40, clientsV6)
	t3.AddRow("/24 IPv4 client subnets", 12300/40, len(subsV4))
	t3.AddRow("/48 IPv6 client subnets", 2800/40, len(subsV6))
	t3.AddRow("unique hostnames", 134925/40, len(names))
	t3.AddRow("unique SLDs", 19014/40, len(slds))
	rep.Tables = append(rep.Tables, t3)
	rep.AddMetric("all-names: v6 client share", 38800.0/76200,
		float64(clientsV6)/float64(max(1, len(an.Clients))), "fraction")

	rep.Notes = append(rep.Notes,
		"dataset shapes (family splits, AS concentration, client subnet diversity) match §4; absolute counts are the configured scale of the paper's datasets")
	return rep, nil
}

func scaledStr(paperCount int, scale float64) int {
	return scaled(paperCount, scale)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
