package core

import (
	"fmt"
	"time"

	"ecsdns/internal/cachesim"
	"ecsdns/internal/report"
	"ecsdns/internal/stats"
	"ecsdns/internal/traces"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Cache blow-up factor CDF across resolvers, TTL 20/40/60 s (Figure 1)",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig2",
		Title: "Cache blow-up vs client population (Figure 2)",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Cache hit rate with and without ECS vs client population (Figure 3)",
		Run:   runFig3,
	})
}

func publicCDNConfig(cfg Config) traces.PublicCDNConfig {
	c := traces.DefaultPublicCDN
	c.Seed = cfg.Seed
	c.Resolvers = scaled(2370, cfg.Scale)
	return c
}

func allNamesConfig(cfg Config) traces.AllNamesConfig {
	c := traces.DefaultAllNames
	c.Seed = cfg.Seed
	return c
}

func runFig1(cfg Config) (*Report, error) {
	trs := traces.GeneratePublicCDN(publicCDNConfig(cfg))
	rep := &Report{ID: "fig1", Title: "ECS cache blow-up factor per egress resolver"}

	series := map[string]*stats.CDF{}
	var medians, maxima []float64
	for _, ttl := range []time.Duration{20 * time.Second, 40 * time.Second, 60 * time.Second} {
		var factors []float64
		for _, tr := range trs {
			factors = append(factors, cachesim.Blowup(tr.Records, ttl).Factor())
		}
		cdf := stats.NewCDF(factors)
		series[fmt.Sprintf("%d sec TTL", int(ttl.Seconds()))] = cdf
		medians = append(medians, cdf.Quantile(0.5))
		maxima = append(maxima, stats.Max(factors))
	}
	rep.Tables = append(rep.Tables,
		report.SeriesTable("Blow-up factor distribution (Figure 1)", "blow-up factor",
			series, []float64{0.10, 0.25, 0.50, 0.75, 0.90, 1.0}))

	rep.AddMetric("median blow-up, TTL 20 s", 4.0, medians[0], "×")
	rep.AddMetric("max blow-up, TTL 20 s", 15.95, maxima[0], "×")
	rep.AddMetric("max blow-up, TTL 40 s", 23.68, maxima[1], "×")
	rep.AddMetric("max blow-up, TTL 60 s", 29.85, maxima[2], "×")
	rep.Notes = append(rep.Notes,
		"half the resolvers need >4× the cache with ECS at the CDN's 20 s TTL, and the blow-up grows with TTL, as in Figure 1")
	return rep, nil
}

func runFig2(cfg Config) (*Report, error) {
	tr := traces.GenerateAllNames(allNamesConfig(cfg))
	rep := &Report{ID: "fig2", Title: "All-names resolver cache blow-up vs client fraction"}

	t := &report.Table{
		Title:   "Blow-up factor by client fraction (Figure 2, 3-seed averages)",
		Headers: []string{"% clients", "blow-up factor"},
	}
	var atFull, atTen float64
	for frac := 10; frac <= 100; frac += 10 {
		var sum float64
		runs := 3
		if frac == 100 {
			runs = 1 // the full population is deterministic
		}
		for seed := int64(0); seed < int64(runs); seed++ {
			keep := cachesim.SampleClients(tr.Clients, float64(frac)/100, cfg.Seed+seed)
			recs := cachesim.FilterClients(tr.Records, keep)
			sum += cachesim.Blowup(recs, 0).Factor()
		}
		avg := sum / float64(runs)
		t.AddRow(fmt.Sprintf("%d", frac), avg)
		if frac == 100 {
			atFull = avg
		}
		if frac == 10 {
			atTen = avg
		}
	}
	rep.Tables = append(rep.Tables, t)
	rep.AddMetric("blow-up at 100% clients", 4.3, atFull, "×")
	rep.AddMetric("blow-up at 10% clients", 1.7, atTen, "×")
	rep.Notes = append(rep.Notes,
		"the blow-up grows with the client population and does not flatten at 100%, as in Figure 2")
	return rep, nil
}

func runFig3(cfg Config) (*Report, error) {
	tr := traces.GenerateAllNames(allNamesConfig(cfg))
	rep := &Report{ID: "fig3", Title: "Cache hit rate with and without ECS"}

	t := &report.Table{
		Title:   "Hit rate by client fraction (Figure 3, 3-seed averages)",
		Headers: []string{"% clients", "no ECS (%)", "with ECS (%)"},
	}
	var fullPlain, fullECS float64
	for frac := 10; frac <= 100; frac += 10 {
		var sumPlain, sumECS float64
		runs := 3
		if frac == 100 {
			runs = 1
		}
		for seed := int64(0); seed < int64(runs); seed++ {
			keep := cachesim.SampleClients(tr.Clients, float64(frac)/100, cfg.Seed+seed)
			recs := cachesim.FilterClients(tr.Records, keep)
			sumPlain += cachesim.HitRate(recs, false).Rate()
			sumECS += cachesim.HitRate(recs, true).Rate()
		}
		plain := sumPlain / float64(runs)
		ecs := sumECS / float64(runs)
		t.AddRow(fmt.Sprintf("%d", frac), plain, ecs)
		if frac == 100 {
			fullPlain, fullECS = plain, ecs
		}
	}
	rep.Tables = append(rep.Tables, t)
	rep.AddMetric("hit rate without ECS, all clients", 76, fullPlain, "%")
	rep.AddMetric("hit rate with ECS, all clients", 30, fullECS, "%")
	rep.Notes = append(rep.Notes,
		"ECS scope restrictions cut the hit rate by more than half across all client populations, as in Figure 3")
	return rep, nil
}
