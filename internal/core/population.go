package core

import (
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"ecsdns/internal/authority"
	"ecsdns/internal/dnswire"
	"ecsdns/internal/ecsopt"
	"ecsdns/internal/geo"
	"ecsdns/internal/netem"
	"ecsdns/internal/resolver"
	"ecsdns/internal/scanner"
)

// cohort is a group of resolvers sharing a behavior profile, sized by
// the paper's counts and scaled by Config.Scale.
type cohort struct {
	// label names the cohort in notes.
	label string
	// paperCount is the size in the paper's datasets.
	paperCount int
	// profile builds the resolver profile (fresh per resolver so probe
	// names can differ).
	profile func() resolver.Profile
	// v6 places the resolver (and its clients) in IPv6 space.
	v6 bool
	// singleAS packs the whole cohort into one autonomous system — the
	// paper's "dominant AS" holds 3067 of the 4147 resolvers.
	singleAS bool
}

// cdnCohorts reproduces the marginals of Table 1 (CDN column) and the
// §6.1 probing census simultaneously. The counts are the paper's; see
// EXPERIMENTS.md for the ±4% reconciliation between the two marginals.
func cdnCohorts() []cohort {
	probe := func(p resolver.Profile) func() resolver.Profile {
		return func() resolver.Profile { return p }
	}
	withBits := func(bits int) func() resolver.Profile {
		return func() resolver.Profile {
			p := resolver.FullPrefixProfile()
			p.V4SourceBits = bits
			return p
		}
	}
	mixed := func(bits []int, jam bool) func() resolver.Profile {
		return func() resolver.Profile {
			p := resolver.FullPrefixProfile()
			p.Probing = resolver.ProbeRandom
			p.MixedV4Bits = bits
			p.JamLastByte = jam
			p.JamValue = 0x01
			return p
		}
	}
	hostnames := func() resolver.Profile {
		p := resolver.GoogleLikeProfile()
		p.Probing = resolver.ProbeHostnames
		p.ProbeNames = []dnswire.Name{probeHostname}
		return p
	}
	interval := func() resolver.Profile {
		p := resolver.LoopbackProberProfile()
		p.ProbeNames = []dnswire.Name{probeHostname}
		return p
	}
	onMiss := func() resolver.Profile {
		p := resolver.GoogleLikeProfile()
		p.Probing = resolver.ProbeOnMiss
		p.ProbeNames = []dnswire.Name{probeHostname}
		return p
	}
	random := func() resolver.Profile {
		p := resolver.GoogleLikeProfile()
		p.Probing = resolver.ProbeRandom
		return p
	}
	v6prof := func(bits int) func() resolver.Profile {
		return func() resolver.Profile {
			p := resolver.GoogleLikeProfile()
			p.V6SourceBits = bits
			return p
		}
	}
	return []cohort{
		// §6.1 class 1: ECS on 100% of address queries.
		{"all/32-jammed (dominant AS)", 2970, probe(resolver.JammedProfile()), false, true},
		{"all/24", 180, probe(resolver.GoogleLikeProfile()), false, false},
		{"all/18", 60, withBits(18), false, false},
		{"all/22", 19, withBits(22), false, false},
		{"all/25", 1, probe(resolver.TwentyFiveBitProfile()), false, false},
		{"all/32-plain", 152, withBits(32), false, false},
		{"all/v6-56", 56, v6prof(56), true, false},
		{"all/v6-48", 60, v6prof(48), true, false},
		{"all/v6-32", 28, v6prof(32), true, false},
		{"all/v6-64", 4, v6prof(64), true, false},
		// §6.1 class 2: specific hostnames, caching disabled.
		{"hostnames-no-cache", 258, hostnames, false, false},
		// §6.1 class 3: 30-minute loopback probes.
		{"interval-loopback", 32, interval, false, false},
		// §6.1 class 4: ECS on cache miss only.
		{"on-miss", 88, onMiss, false, false},
		// §6.1 remainder: no discernible pattern.
		{"random", 236, random, false, false},
		{"random/32", 69, withBits32Random(), false, false},
		{"random/25+32-jam", 78, mixed([]int{25, 32}, true), false, false},
		{"random/24+25+32-jam", 1, mixed([]int{24, 25, 32}, true), false, false},
		{"random/24+32-jam", 3, mixed([]int{24, 32}, true), false, false},
	}
}

func withBits32Random() func() resolver.Profile {
	return func() resolver.Profile {
		p := resolver.FullPrefixProfile()
		p.Probing = resolver.ProbeRandom
		p.V4SourceBits = 32
		return p
	}
}

// probeHostname is the dedicated name hostname-pinned and interval
// probers use.
const probeHostname = dnswire.Name("pinned.cdn-d.example.")

// §6.3 cache-behavior cohorts (203 studied resolvers).
func cachingCohorts() []cohort {
	probe := func(f func() resolver.Profile) func() resolver.Profile { return f }
	return []cohort{
		{"caching/correct", 76, probe(resolver.CompliantProfile), false, false},
		{"caching/ignores-scope", 103, probe(resolver.IgnoreScopeProfile), false, false},
		{"caching/accepts-long", 15, probe(resolver.LongPrefixProfile), false, false},
		{"caching/caps-22", 8, probe(resolver.Cap22Profile), false, false},
		{"caching/private-prefix", 1, probe(resolver.PrivatePrefixProfile), false, false},
	}
}

// scaled converts a paper count to the simulation size.
func scaled(paperCount int, scale float64) int {
	n := int(float64(paperCount)*scale + 0.5)
	if n < 1 && paperCount > 0 {
		n = 1
	}
	return n
}

// Study is the assembled ecosystem the behavior experiments run in: one
// world, one network, a whitelisting CDN authority (the passive vantage),
// an experimental scan authority, and the resolver population.
type Study struct {
	Cfg   Config
	World *geo.Internet
	Net   *netem.Network

	// CDNLogs records the non-whitelisted CDN traffic (the CDN
	// dataset); ScanLogs records scan-zone traffic (the Scan dataset).
	CDNLogs  *scanner.LogBuffer
	ScanLogs *scanner.LogBuffer
	Scope    *scanner.ScopeControl

	CDNZone  dnswire.Name
	ScanZone dnswire.Name
	CDNAddr  netip.Addr
	ScanAddr netip.Addr

	Directory *resolver.Directory

	// Population groups.
	CDNResolvers  []*resolver.Resolver // the 4147-analog, non-whitelisted
	GoogleFleet   []*resolver.Resolver // whitelisted, scan-visible
	ScanOnly      []*resolver.Resolver // ECS resolvers only the scan finds
	NonECS        []*resolver.Resolver
	CohortOf      map[netip.Addr]string
	ScannerSource netip.Addr

	// Forwarders built for the scan, with their upstreams.
	OpenForwarders []netip.Addr

	nextHost int
}

// BuildStudy assembles the ecosystem at cfg.Scale.
func BuildStudy(cfg Config) *Study {
	w := geo.Build(geo.Config{Seed: cfg.Seed, NumASes: 400, BlocksPerAS: 2})
	n := netem.New(w)
	if cfg.Faults != "" {
		plan, err := netem.ParseFaultPlan(cfg.Faults)
		if err != nil {
			panic("core: invalid Config.Faults: " + err.Error())
		}
		n.SetFaults(plan, cfg.Seed)
	}
	s := &Study{
		Cfg: cfg, World: w, Net: n,
		CDNLogs: &scanner.LogBuffer{}, ScanLogs: &scanner.LogBuffer{},
		Scope:    scanner.NewScopeControl(),
		CDNZone:  "cdn-d.example.",
		ScanZone: "scan.example.org.",
		CohortOf: make(map[netip.Addr]string),
	}

	// The major CDN's authoritative: ECS only for whitelisted resolvers
	// (none of the studied population), 20-second TTLs.
	s.CDNAddr = w.AddrInCity(geo.CityIndex("Boston"), 30, 53)
	whitelisted := map[netip.Addr]bool{}
	cdnAuth := authority.NewServer(authority.Config{
		Addr:       s.CDNAddr,
		ECSEnabled: true,
		Whitelist:  func(a netip.Addr) bool { return whitelisted[a] },
		Scope:      authority.ScopeFixed(24),
		Now:        n.Clock().Now,
	})
	cz := authority.NewZone(s.CDNZone, 20)
	cz.SetWildcard(dnswire.TypeA, &dnswire.ARData{Addr: netip.MustParseAddr("192.0.2.190")})
	cz.SetWildcard(dnswire.TypeAAAA, &dnswire.AAAARData{Addr: netip.MustParseAddr("2001:db8:99::1")})
	cdnAuth.AddZone(cz)
	cdnAuth.SetLog(func(r authority.LogRecord) {
		if !whitelisted[r.Resolver] {
			s.CDNLogs.Append(r)
		}
	})
	n.Register(s.CDNAddr, cdnAuth)

	// The experimental scan authority: ECS for everyone, scope control.
	s.ScanAddr = w.AddrInCity(geo.CityIndex("Cleveland"), 30, 53)
	scanAuth := authority.NewServer(authority.Config{
		Addr:       s.ScanAddr,
		ECSEnabled: true,
		Scope:      s.Scope.Func(),
		RawScope:   true,
		Now:        n.Clock().Now,
	})
	sz := authority.NewZone(s.ScanZone, 30)
	sz.SetWildcard(dnswire.TypeA, &dnswire.ARData{Addr: netip.MustParseAddr("192.0.2.53")})
	scanAuth.AddZone(sz)
	scanAuth.SetLog(s.ScanLogs.Append)
	n.Register(s.ScanAddr, scanAuth)

	s.Directory = resolver.NewDirectory()
	s.Directory.Add(s.CDNZone, s.CDNAddr)
	s.Directory.Add(s.ScanZone, s.ScanAddr)

	s.ScannerSource = w.AddrInCity(geo.CityIndex("Cleveland"), 31, 9)

	// Non-whitelisted ECS population (the CDN dataset's 4147-analog).
	// The dominant-AS cohort is packed into one Chinese AS, as in §4.
	dominantAS := s.findCNAS()
	salt := 100
	for _, c := range cdnCohorts() {
		for i := 0; i < scaled(c.paperCount, cfg.Scale); i++ {
			var r *resolver.Resolver
			if c.singleAS {
				r = s.addResolverInAS(dominantAS, i, c.profile())
			} else {
				r = s.addResolver(salt, c.profile(), c.v6)
			}
			s.CohortOf[r.Addr()] = c.label
			s.CDNResolvers = append(s.CDNResolvers, r)
			salt++
		}
	}

	// Google-like fleet: whitelisted at the CDN, dominant in the scan.
	for i := 0; i < scaled(1256, cfg.Scale); i++ {
		r := s.addResolver(salt, resolver.GoogleLikeProfile(), false)
		whitelisted[r.Addr()] = true
		s.CohortOf[r.Addr()] = "google"
		s.GoogleFleet = append(s.GoogleFleet, r)
		salt++
	}

	// ECS resolvers only the scan can see (never resolve CDN names).
	for i := 0; i < scaled(44, cfg.Scale); i++ {
		r := s.addResolver(salt, resolver.GoogleLikeProfile(), false)
		s.CohortOf[r.Addr()] = "scan-only"
		s.ScanOnly = append(s.ScanOnly, r)
		salt++
	}

	// Non-ECS resolvers reachable through the scan.
	for i := 0; i < scaled(1200, cfg.Scale); i++ {
		r := s.addResolver(salt, resolver.NonECSProfile(), false)
		s.CohortOf[r.Addr()] = "non-ecs"
		s.NonECS = append(s.NonECS, r)
		salt++
	}
	return s
}

// findCNAS returns the index of the first Chinese AS in the world — the
// home of the dominant resolver cohort.
func (s *Study) findCNAS() int {
	for i := 0; i < s.World.NumASes(); i++ {
		if s.World.ASByIndex(i).Country == "CN" {
			return i
		}
	}
	return 0
}

// addResolverInAS places the i-th resolver of a cohort inside one
// specific autonomous system's address space.
func (s *Study) addResolverInAS(asIdx, i int, p resolver.Profile) *resolver.Resolver {
	as := s.World.ASByIndex(asIdx)
	blk := as.Blocks[i%len(as.Blocks)]
	// Spread across the /16's subnets and hosts so even paper-scale
	// cohorts (thousands of resolvers) get distinct addresses.
	slot := i / len(as.Blocks)
	addr := netip.AddrFrom4([4]byte{
		byte(blk >> 8), byte(blk), byte(slot % 256), byte(10 + slot/256%240),
	})
	r := resolver.New(resolver.Config{
		Addr:      addr,
		Transport: s.Net,
		Now:       s.Net.Clock().Now,
		Directory: s.Directory,
		Profile:   p,
		Seed:      int64(9000 + i),
	})
	s.Net.Register(addr, r)
	return r
}

// addResolver creates and registers one resolver at a deterministic
// location.
func (s *Study) addResolver(salt int, p resolver.Profile, v6 bool) *resolver.Resolver {
	city := salt % len(geo.Cities)
	var addr netip.Addr
	if v6 {
		rng := saltRNG(s.Cfg.Seed, salt)
		addr = s.World.RandomClientV6(rng)
	} else {
		addr = s.World.AddrInCity(city, salt, 53)
	}
	r := resolver.New(resolver.Config{
		Addr:      addr,
		Transport: s.Net,
		Now:       s.Net.Clock().Now,
		Directory: s.Directory,
		Profile:   p,
		Seed:      int64(salt),
	})
	s.Net.Register(addr, r)
	return r
}

// hostname allocates a unique CDN-zone hostname.
func (s *Study) hostname() dnswire.Name {
	s.nextHost++
	return dnswire.Name(fmt.Sprintf("h%05d.%s", s.nextHost, s.CDNZone))
}

// DriveCDNWorkload sends each non-whitelisted resolver the fixed client
// query pattern that lets the passive classifier discriminate the §6.1
// probing classes: fresh queries, within-TTL repeats, a different-/24
// repeat within a minute, a post-TTL repeat, and a 30-minute-later round.
func (s *Study) DriveCDNWorkload() {
	clock := s.Net.Clock()
	for i, r := range s.CDNResolvers {
		base := clock.Now()
		h := make([]dnswire.Name, 5)
		prof := s.CohortOf[r.Addr()]
		for j := range h {
			h[j] = s.hostname()
		}
		// Pinned-name cohorts probe a dedicated hostname.
		if prof == "hostnames-no-cache" || prof == "interval-loopback" || prof == "on-miss" {
			h[0] = probeHostname
		}
		cA := s.clientFor(r, 0)
		cB := s.clientFor(r, 1)

		step := func(offset time.Duration, client netip.Addr, names ...dnswire.Name) {
			clock.Set(base.Add(offset))
			for _, name := range names {
				q := dnswire.NewQuery(uint16(i+1), name, dnswire.TypeA)
				if client.Is6() && !client.Is4In6() {
					q = dnswire.NewQuery(uint16(i+1), name, dnswire.TypeAAAA)
				}
				q.EDNS = dnswire.NewEDNS()
				s.Net.Exchange(client, r.Addr(), q) //nolint:errcheck // drops are part of the ecosystem
			}
		}
		step(0, cA, h[0], h[1], h[2])
		step(10*time.Second, cA, h[0], h[1])
		// A second client in a different /24 with a fresh name: its
		// distinct address exposes per-client /32 prefix behavior.
		step(15*time.Second, cB, h[0], h[4])
		// Post-TTL requeries at sub-minute gaps: they separate the
		// random senders (ECS may fire within a minute of the previous
		// query) from the disciplined on-miss class.
		step(25*time.Second, cA, h[1])
		step(50*time.Second, cA, h[2])
		step(55*time.Second, cA, h[1])
		step(80*time.Second, cA, h[0])
		step(30*time.Minute, cA, h[0], h[3])
		// One more post-TTL requery at a sub-minute gap, late in the
		// window, to further separate coin-flip senders from the
		// on-miss discipline.
		step(30*time.Minute+21*time.Second, cA, h[3])
	}
}

// clientFor returns the k-th client of a resolver, in distinct /24s (or
// /48s for IPv6 resolvers).
func (s *Study) clientFor(r *resolver.Resolver, k int) netip.Addr {
	if r.Addr().Is6() && !r.Addr().Is4In6() {
		rng := saltRNG(s.Cfg.Seed, int(r.Addr().As16()[15])+k*7)
		return s.World.RandomClientV6(rng)
	}
	a := r.Addr().As4()
	// Same AS block, different /24 and host byte per k so that /32
	// prefix policies reveal their true last-byte behavior.
	a[2] = byte(int(a[2]) + 40 + 13*k)
	a[3] = byte(10 + 67*k)
	return netip.AddrFrom4(a)
}

// BuildScanForwarders attaches open forwarders (and some hidden-resolver
// chains) to the scan-visible egress population and returns the ingress
// list to probe.
func (s *Study) BuildScanForwarders() []netip.Addr {
	var ingresses []netip.Addr
	add := func(upstream netip.Addr, salt int, chained bool) {
		fwdAddr := s.World.AddrInCity((salt*7)%len(geo.Cities), salt+5000, 99)
		up := upstream
		if chained {
			hiddenAddr := s.World.AddrInCity((salt*13)%len(geo.Cities), salt+9000, 98)
			s.Net.Register(hiddenAddr, &resolver.Forwarder{
				Addr: hiddenAddr, Upstream: upstream, Transport: s.Net, Open: true,
			})
			up = hiddenAddr
		}
		s.Net.Register(fwdAddr, &resolver.Forwarder{
			Addr: fwdAddr, Upstream: up, Transport: s.Net, Open: true,
		})
		ingresses = append(ingresses, fwdAddr)
	}

	salt := 1
	// Google fleet: reachable through many forwarders, half behind
	// hidden chains (the paper: ~half of ECS queries carried hidden
	// prefixes).
	for _, r := range s.GoogleFleet {
		add(r.Addr(), salt, salt%2 == 0)
		salt++
	}
	// A subset of the CDN population is scan-reachable: the paper found
	// 234 of its 278 scan-discovered non-Google resolvers in the CDN
	// logs.
	reach := scaled(234, s.Cfg.Scale)
	stride := 1
	if reach > 0 {
		stride = len(s.CDNResolvers) / reach
		if stride < 1 {
			stride = 1
		}
	}
	for i := 0; i < reach && i*stride < len(s.CDNResolvers); i++ {
		r := s.CDNResolvers[i*stride]
		add(r.Addr(), salt, salt%3 == 0)
		salt++
	}
	// Scan-only ECS resolvers and non-ECS resolvers.
	for _, r := range s.ScanOnly {
		add(r.Addr(), salt, false)
		salt++
	}
	for _, r := range s.NonECS {
		add(r.Addr(), salt, false)
		salt++
	}
	s.OpenForwarders = ingresses
	return ingresses
}

// RunScan probes all forwarders against the scan zone.
func (s *Study) RunScan() scanner.Result {
	sc := &scanner.Scan{
		Exchange: func(to netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
			resp, _, err := s.Net.Exchange(s.ScannerSource, to, q)
			return resp, err
		},
		Zone:        s.ScanZone,
		ScannerAddr: s.ScannerSource,
	}
	if s.OpenForwarders == nil {
		s.BuildScanForwarders()
	}
	return sc.Run(s.OpenForwarders, s.ScanLogs)
}

// BuildCachingPopulation creates the §6.3 population (203-analog) wired
// to the scan authority, returning resolvers with their expected class
// labels.
func (s *Study) BuildCachingPopulation() []CachingSubject {
	var out []CachingSubject
	salt := 20000
	for _, c := range cachingCohorts() {
		for i := 0; i < scaled(c.paperCount, s.Cfg.Scale); i++ {
			r := s.addResolver(salt, c.profile(), false)
			out = append(out, CachingSubject{Resolver: r, Label: c.label})
			salt++
		}
	}
	return out
}

// CachingSubject pairs a resolver with its ground-truth cohort.
type CachingSubject struct {
	Resolver *resolver.Resolver
	Label    string
}

// ProbeCachingBehavior runs the §6.3 two-query methodology against each
// subject and returns the classification census. As in the paper, each
// resolver first gets the acceptance pre-test: only paths that convey
// injected prefixes are probed with technique 1; the rest fall back to
// vantage forwarders.
func (s *Study) ProbeCachingBehavior(subjects []CachingSubject) (map[scanner.CachingClass]int, error) {
	census := make(map[scanner.CachingClass]int)
	vantage := 0
	for _, sub := range subjects {
		prober, err := s.classifyProber(sub.Resolver, vantage)
		if err != nil {
			return census, err
		}
		vantage += 3
		obs, err := prober.Probe()
		if err != nil {
			return census, err
		}
		census[scanner.Classify(obs)]++
	}
	return census, nil
}

// classifyProber builds the right prober for a resolver: direct
// injection when the acceptance pre-test passes, vantage forwarders
// otherwise.
func (s *Study) classifyProber(r *resolver.Resolver, vantage int) (*scanner.Prober, error) {
	direct := s.proberFor(r, true, vantage)
	ok, err := direct.DetectInjection()
	if err != nil {
		return nil, err
	}
	if ok {
		return direct, nil
	}
	return s.proberFor(r, false, vantage), nil
}

func (s *Study) proberFor(r *resolver.Resolver, canInject bool, vantageSalt int) *scanner.Prober {
	var fwds [3]netip.Addr
	if !canInject {
		for i, p := range scanner.InjectionPrefixes {
			a := p.Addr().As4()
			a[2] += byte(vantageSalt / 3 % 3) // reuse the same /22 structure
			a[3] = byte(9 + vantageSalt%200)
			fwds[i] = netip.AddrFrom4(a)
			s.Net.Register(fwds[i], &resolver.Forwarder{
				Addr: fwds[i], Upstream: r.Addr(), Transport: s.Net, Open: true,
			})
		}
	}
	return &scanner.Prober{
		Zone:  s.ScanZone,
		Logs:  s.ScanLogs,
		Scope: s.Scope,
		Send: func(v int, name dnswire.Name, inject *ecsopt.ClientSubnet) error {
			q := dnswire.NewQuery(uint16(v+1), name, dnswire.TypeA)
			to := r.Addr()
			if !canInject {
				to = fwds[v]
			} else if inject != nil {
				ecsopt.Attach(q, *inject)
			}
			_, _, err := s.Net.Exchange(s.ScannerSource, to, q)
			return err
		},
		CanInject: canInject,
	}
}

// saltRNG derives a deterministic RNG from the study seed and a salt.
func saltRNG(seed int64, salt int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1000003 + int64(salt)))
}
