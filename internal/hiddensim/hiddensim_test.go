package hiddensim

import (
	"math"
	"testing"

	"ecsdns/internal/geo"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := MPConfig()
	cfg.Combos = 2000
	a := Generate(cfg)
	b := Generate(cfg)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("combo %d differs between identical runs", i)
		}
	}
}

func TestGenerateDistancesConsistent(t *testing.T) {
	cfg := MPConfig()
	cfg.Combos = 3000
	for _, c := range Generate(cfg) {
		f := geo.LocationOfCity(c.ForwarderCity)
		h := geo.LocationOfCity(c.HiddenCity)
		e := geo.LocationOfCity(c.EgressCity)
		if math.Abs(c.FH-geo.DistanceKm(f, h)) > 1e-6 {
			t.Fatalf("FH inconsistent for %+v", c)
		}
		if math.Abs(c.FR-geo.DistanceKm(f, e)) > 1e-6 {
			t.Fatalf("FR inconsistent for %+v", c)
		}
	}
}

func TestMPFractionsMatchPaper(t *testing.T) {
	// Paper (Figure 4): 8% below, 1.3% on, 90.7% above the diagonal.
	f := Analyze(Generate(MPConfig()))
	if f.Below < 0.05 || f.Below > 0.11 {
		t.Errorf("MP below = %.3f, paper reports 0.080", f.Below)
	}
	if f.On > 0.05 {
		t.Errorf("MP on = %.3f, paper reports 0.013", f.On)
	}
	if f.Above < 0.85 {
		t.Errorf("MP above = %.3f, paper reports 0.907", f.Above)
	}
	if s := f.Below + f.On + f.Above; math.Abs(s-1) > 1e-9 {
		t.Errorf("fractions sum to %v", s)
	}
}

func TestNonMPFractionsMatchPaper(t *testing.T) {
	// Paper (Figure 5): 7.8% below, 19.5% on, 72.7% above.
	f := Analyze(Generate(NonMPConfig()))
	if f.Below < 0.05 || f.Below > 0.11 {
		t.Errorf("non-MP below = %.3f, paper reports 0.078", f.Below)
	}
	if f.On < 0.14 || f.On > 0.26 {
		t.Errorf("non-MP on = %.3f, paper reports 0.195", f.On)
	}
	if f.Above < 0.64 || f.Above > 0.80 {
		t.Errorf("non-MP above = %.3f, paper reports 0.727", f.Above)
	}
}

func TestNonMPChinaStructure(t *testing.T) {
	// The non-MP population must show the ~1000–2000 km Chinese
	// inter-city modes the paper describes.
	combos := Generate(NonMPConfig())
	inBand := 0
	for _, c := range combos {
		if c.FH > 900 && c.FH < 2200 {
			inBand++
		}
	}
	if float64(inBand)/float64(len(combos)) < 0.05 {
		t.Errorf("only %d/%d combos in the 1000–2000 km band", inBand, len(combos))
	}
	// Every egress is one of the big-3 farm cities.
	big3 := map[int]bool{
		geo.CityIndex("Beijing"):   true,
		geo.CityIndex("Shanghai"):  true,
		geo.CityIndex("Guangzhou"): true,
	}
	for _, c := range combos {
		if !big3[c.EgressCity] {
			t.Fatalf("egress outside the big-3: %s", geo.Cities[c.EgressCity].Name)
		}
	}
}

func TestAnalyzeEdgeCases(t *testing.T) {
	if f := Analyze(nil); f != (Fractions{}) {
		t.Fatalf("empty analysis = %+v", f)
	}
	combos := []Combo{
		{FH: 100, FR: 200}, // above
		{FH: 200, FR: 100}, // below
		{FH: 50, FR: 50.5}, // on (within epsilon)
	}
	f := Analyze(combos)
	if f.Below == 0 || f.On == 0 || f.Above == 0 {
		t.Fatalf("decomposition wrong: %+v", f)
	}
}

func TestHexbinOf(t *testing.T) {
	combos := Generate(Config{
		Seed: 1, Combos: 1000,
		HubCities:            []int{geo.CityIndex("Frankfurt")},
		PHiddenSameCity:      0.5,
		PHiddenRegional:      0.3,
		PEgressNearForwarder: 1,
	})
	h := HexbinOf(combos, 500)
	if h.Total() != 1000 {
		t.Fatalf("hexbin total = %d", h.Total())
	}
}

func TestWorstPenaltyFindsPathology(t *testing.T) {
	combos := Generate(MPConfig())
	worst := WorstPenalty(combos)
	// The paper's worst case is a Santiago forwarder+egress with an
	// Italian hidden resolver, 12000 km away. Our tail must contain
	// multi-thousand-km pathologies too.
	if worst.FH-worst.FR < 3000 {
		t.Errorf("worst ECS penalty only %.0f km (FH=%.0f FR=%.0f)",
			worst.FH-worst.FR, worst.FH, worst.FR)
	}
}
