// Package hiddensim generates and analyzes (forwarder, hidden resolver,
// egress resolver) combinations — the unit of §8.2's study of how hidden
// resolvers interact with ECS. Because egress resolvers derive ECS
// prefixes from the immediate query sender, the hidden resolver's
// location is what authoritative nameservers see; the analysis compares
// the forwarder→hidden distance (what ECS conveys) against the
// forwarder→egress distance (what plain resolver-based mapping would
// use), reproducing the below/on/above-diagonal decomposition of
// Figures 4 and 5.
package hiddensim

import (
	"math/rand"

	"ecsdns/internal/geo"
	"ecsdns/internal/stats"
)

// Combo is one (forwarder, hidden, egress) combination with its two
// distances.
type Combo struct {
	ForwarderCity int
	HiddenCity    int
	EgressCity    int
	// FH is the forwarder→hidden distance in km (the ECS error) and FR
	// the forwarder→egress distance (the no-ECS error).
	FH float64
	FR float64
}

// Config drives combination generation.
type Config struct {
	Seed   int64
	Combos int
	// ForwarderCities/Weights define where forwarders sit; nil means
	// population-weighted over the whole catalog.
	ForwarderCities  []int
	ForwarderWeights []float64
	// HubCities are the egress resolver locations (anycast sites or ISP
	// resolver farms).
	HubCities []int
	// PHiddenSameCity is the probability the hidden resolver shares the
	// forwarder's city; PHiddenRegional the probability it is a random
	// city in the forwarder's region; the rest land in a random global
	// city (the misconfigured DNS paths the paper observes, e.g. a
	// Santiago forwarder chained through an Italian hidden resolver).
	PHiddenSameCity float64
	PHiddenRegional float64
	// PEgressNearForwarder is the probability anycast routing picks the
	// hub nearest the forwarder; otherwise it picks the hub nearest the
	// hidden resolver (which relays the query).
	PEgressNearForwarder float64
	// PEgressRandomHub overrides both: with this probability the query
	// lands on an arbitrary hub, modeling the long-haul anycast routing
	// detours documented for large public resolvers (queries served by
	// out-of-country datacenters).
	PEgressRandomHub float64
}

// MPConfig models the major-public-resolver case of Figure 4: global
// forwarder population, a worldwide anycast hub set, hidden resolvers
// mostly local with a small badly-placed tail.
func MPConfig() Config {
	return Config{
		Seed:   41,
		Combos: 72500, // 1/10 of the paper's 725K
		// The hub set skews toward interconnection cities rather than
		// population centers, which keeps accidental forwarder/hub
		// co-location (the on-diagonal band) rare, as in the paper.
		HubCities: cityIdx(
			"Denver", "Montreal", "Frankfurt", "Amsterdam", "Dublin",
			"Stockholm", "Singapore", "Osaka", "Taipei", "Cape Town",
			"Auckland", "Lima", "Zurich", "Mountain View",
		),
		PHiddenSameCity:      0.70,
		PHiddenRegional:      0.20,
		PEgressNearForwarder: 0.85,
		PEgressRandomHub:     0.90,
	}
}

// NonMPConfig models Figure 5: the non-MP ECS resolver population, which
// the datasets show is dominated by Chinese ISPs with egress farms in
// Beijing, Shanghai and Guangzhou.
func NonMPConfig() Config {
	chinaCities := cityIdx(
		"Beijing", "Shanghai", "Guangzhou", "Shenzhen", "Chengdu",
		"Tianjin", "Wuhan", "Xian", "Hangzhou",
	)
	return Config{
		Seed:            42,
		Combos:          21700, // 1/10 of the paper's 217K
		ForwarderCities: chinaCities,
		ForwarderWeights: []float64{
			0.19, 0.21, 0.15, 0.10, 0.08, 0.07, 0.07, 0.07, 0.06,
		},
		HubCities:            cityIdx("Beijing", "Shanghai", "Guangzhou"),
		PHiddenSameCity:      0.85,
		PHiddenRegional:      0.13,
		PEgressNearForwarder: 0.55,
		PEgressRandomHub:     0.90,
	}
}

func cityIdx(names ...string) []int {
	out := make([]int, 0, len(names))
	for _, n := range names {
		i := geo.CityIndex(n)
		if i < 0 {
			panic("hiddensim: unknown city " + n)
		}
		out = append(out, i)
	}
	return out
}

// Generate draws the combination population.
func Generate(cfg Config) []Combo {
	rng := rand.New(rand.NewSource(cfg.Seed))

	fwdCities := cfg.ForwarderCities
	fwdWeights := cfg.ForwarderWeights
	if fwdCities == nil {
		fwdCities = make([]int, len(geo.Cities))
		fwdWeights = make([]float64, len(geo.Cities))
		for i, c := range geo.Cities {
			fwdCities[i] = i
			fwdWeights[i] = c.Weight
		}
	}
	fwdSampler := stats.NewSampler(fwdWeights)

	// Group catalog cities for the regional draw: same country when the
	// country has several catalog cities (the China case), same
	// continent-scale region otherwise.
	byRegion := map[string][]int{}
	byCountry := map[string][]int{}
	for i, c := range geo.Cities {
		byRegion[c.Region] = append(byRegion[c.Region], i)
		byCountry[c.Country] = append(byCountry[c.Country], i)
	}

	out := make([]Combo, cfg.Combos)
	for i := range out {
		f := fwdCities[fwdSampler.Draw(rng)]
		fLoc := geo.LocationOfCity(f)

		// Hidden resolver placement.
		var h int
		switch r := rng.Float64(); {
		case r < cfg.PHiddenSameCity:
			h = f
		case r < cfg.PHiddenSameCity+cfg.PHiddenRegional:
			pool := byCountry[geo.Cities[f].Country]
			if len(pool) < 2 {
				pool = byRegion[geo.Cities[f].Region]
			}
			h = pool[rng.Intn(len(pool))]
		default:
			h = rng.Intn(len(geo.Cities))
		}
		hLoc := geo.LocationOfCity(h)

		// Egress hub selection.
		var e int
		if rng.Float64() < cfg.PEgressRandomHub {
			e = cfg.HubCities[rng.Intn(len(cfg.HubCities))]
		} else {
			anchor := fLoc
			if rng.Float64() >= cfg.PEgressNearForwarder {
				anchor = hLoc
			}
			e = nearestOf(cfg.HubCities, anchor)
		}
		eLoc := geo.LocationOfCity(e)

		out[i] = Combo{
			ForwarderCity: f,
			HiddenCity:    h,
			EgressCity:    e,
			FH:            geo.DistanceKm(fLoc, hLoc),
			FR:            geo.DistanceKm(fLoc, eLoc),
		}
	}
	return out
}

func nearestOf(cities []int, loc geo.Location) int {
	best, bestD := -1, 0.0
	for _, ci := range cities {
		d := geo.DistanceKm(loc, geo.LocationOfCity(ci))
		if best < 0 || d < bestD {
			best, bestD = ci, d
		}
	}
	return best
}

// Fractions is the diagonal decomposition the paper reports: Below means
// the hidden resolver is farther from the forwarder than the egress
// resolver is (ECS actively hurts), On means equidistant (ECS does not
// help), Above means the hidden resolver is closer (ECS helps).
type Fractions struct {
	Below, On, Above float64
}

// diagEpsilonKm treats city-level co-location as equality, mirroring the
// geolocation granularity of the paper's EdgeScape analysis.
const diagEpsilonKm = 1.0

// Analyze computes the diagonal decomposition.
func Analyze(combos []Combo) Fractions {
	if len(combos) == 0 {
		return Fractions{}
	}
	var below, on, above int
	for _, c := range combos {
		switch {
		case c.FH > c.FR+diagEpsilonKm:
			below++
		case c.FH < c.FR-diagEpsilonKm:
			above++
		default:
			on++
		}
	}
	n := float64(len(combos))
	return Fractions{
		Below: float64(below) / n,
		On:    float64(on) / n,
		Above: float64(above) / n,
	}
}

// HexbinOf aggregates the (FH, FR) scatter at the given bin size (km),
// the textual stand-in for the paper's hexbin plots.
func HexbinOf(combos []Combo, binKm float64) *stats.Hexbin {
	h := stats.NewHexbin(binKm)
	for _, c := range combos {
		// The paper plots F-H on the y axis and F-R on the x axis;
		// points below the diagonal have FH > FR.
		h.Add(c.FH, c.FR)
	}
	return h
}

// WorstPenalty returns the combo with the largest FH−FR gap — the
// paper's Santiago-to-Italy style pathology.
func WorstPenalty(combos []Combo) Combo {
	var worst Combo
	for _, c := range combos {
		if c.FH-c.FR > worst.FH-worst.FR {
			worst = c
		}
	}
	return worst
}
