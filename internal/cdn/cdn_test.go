package cdn

import (
	"math/rand"
	"net/netip"
	"testing"

	"ecsdns/internal/ecsopt"
	"ecsdns/internal/geo"
)

func testWorld() *geo.Internet {
	return geo.Build(geo.Config{Seed: 1, NumASes: 120, BlocksPerAS: 1})
}

func ecsFor(w *geo.Internet, city string, bits int) ecsopt.ClientSubnet {
	addr := w.AddrInCity(geo.CityIndex(city), 0, 7)
	return ecsopt.MustNew(addr, bits)
}

func TestDeployPlacesLocatableEdges(t *testing.T) {
	w := testWorld()
	d := DeployGlobal(w, "t", 2, 1)
	if len(d.Edges()) != 2*len(geo.Cities) {
		t.Fatalf("edges = %d", len(d.Edges()))
	}
	for _, e := range d.Edges() {
		loc, ok := w.Locate(e.Addr)
		if !ok {
			t.Fatalf("edge %s unlocatable", e.Addr)
		}
		if loc.City != geo.Cities[e.CityIdx].Name {
			t.Fatalf("edge %s located in %s, placed in %s", e.Addr, loc.City, geo.Cities[e.CityIdx].Name)
		}
	}
}

func TestDeployDeduplicatesCities(t *testing.T) {
	w := testWorld()
	ci := geo.CityIndex("Chicago")
	d := Deploy(w, "t", []int{ci, ci, ci}, 3, 1)
	if len(d.Edges()) != 3 {
		t.Fatalf("duplicate city deployed %d edges, want 3", len(d.Edges()))
	}
}

func TestNearestCity(t *testing.T) {
	w := testWorld()
	d := Deploy(w, "t", []int{geo.CityIndex("Chicago"), geo.CityIndex("Tokyo")}, 1, 1)
	cleveland := geo.LocationOfCity(geo.CityIndex("Cleveland"))
	if got := d.NearestCity(cleveland); got != geo.CityIndex("Chicago") {
		t.Fatalf("nearest to Cleveland = %s", geo.Cities[got].Name)
	}
	osaka := geo.LocationOfCity(geo.CityIndex("Osaka"))
	if got := d.NearestCity(osaka); got != geo.CityIndex("Tokyo") {
		t.Fatalf("nearest to Osaka = %s", geo.Cities[got].Name)
	}
}

func TestProximityMappingUsesECS(t *testing.T) {
	w := testWorld()
	p := NewGoogleLike(w)
	resolver := w.AddrInCity(geo.CityIndex("Mountain View"), 0, 3)

	// Client in Tokyo behind a Mountain View resolver: with ECS the edge
	// must be near Tokyo, without it near Mountain View.
	tokyoECS := ecsFor(w, "Tokyo", 24)
	withECS := p.Select(MapQuery{ECS: tokyoECS, HasECS: true, Resolver: resolver})
	if !withECS.UsedECS || len(withECS.Edges) == 0 {
		t.Fatalf("ECS not used: %+v", withECS)
	}
	tokyo := geo.LocationOfCity(geo.CityIndex("Tokyo"))
	if d := geo.DistanceKm(withECS.Edges[0].Loc, tokyo); d > 1500 {
		t.Fatalf("ECS answer %0.f km from Tokyo", d)
	}
	withoutECS := p.Select(MapQuery{Resolver: resolver})
	if withoutECS.UsedECS {
		t.Fatal("UsedECS without option")
	}
	mv := geo.LocationOfCity(geo.CityIndex("Mountain View"))
	if d := geo.DistanceKm(withoutECS.Edges[0].Loc, mv); d > 1500 {
		t.Fatalf("resolver-based answer %.0f km from Mountain View", d)
	}
}

func TestScopeEchoAndCap(t *testing.T) {
	w := testWorld()
	p := NewGoogleLike(w)
	r := p.Select(MapQuery{ECS: ecsFor(w, "Tokyo", 24), HasECS: true})
	if r.Scope != 24 {
		t.Fatalf("scope = %d, want 24", r.Scope)
	}
	// /32 source is capped to the recommended /24.
	r = p.Select(MapQuery{ECS: ecsFor(w, "Tokyo", 32), HasECS: true})
	if r.Scope != 24 {
		t.Fatalf("scope for /32 source = %d, want 24", r.Scope)
	}
	// /16 source echoes 16 under Google-like (min prefix 1).
	r = p.Select(MapQuery{ECS: ecsFor(w, "Tokyo", 16), HasECS: true})
	if r.Scope != 16 {
		t.Fatalf("scope for /16 source = %d, want 16", r.Scope)
	}
}

func TestCDN1ThresholdAt24(t *testing.T) {
	w := testWorld()
	p := NewCDN1(w)
	resolver := w.AddrInCity(geo.CityIndex("Cleveland"), 0, 3)
	tokyo := geo.LocationOfCity(geo.CityIndex("Tokyo"))

	r24 := p.Select(MapQuery{ECS: ecsFor(w, "Tokyo", 24), HasECS: true, Resolver: resolver})
	if !r24.UsedECS {
		t.Fatal("/24 must use ECS")
	}
	if d := geo.DistanceKm(r24.Edges[0].Loc, tokyo); d > 1500 {
		t.Fatalf("/24 answer %.0f km from Tokyo", d)
	}
	r23 := p.Select(MapQuery{ECS: ecsFor(w, "Tokyo", 23), HasECS: true, Resolver: resolver})
	if r23.UsedECS {
		t.Fatal("/23 must not use ECS under CDN-1")
	}
	// The /23 fallback is a central pick, not proximity: collect unique
	// answers for many client cities — there must be only a few.
	unique := map[netip.Addr]bool{}
	for ci := range geo.Cities {
		addr := w.AddrInCity(ci, 0, 9)
		cs := ecsopt.MustNew(addr, 23)
		r := p.Select(MapQuery{ECS: cs, HasECS: true, Resolver: resolver})
		unique[r.Edges[0].Addr] = true
	}
	if len(unique) > p.CentralCount {
		t.Fatalf("central fallback produced %d unique edges, want ≤ %d", len(unique), p.CentralCount)
	}
}

func TestCDN2ThresholdAt21(t *testing.T) {
	w := testWorld()
	p := NewCDN2(w)
	resolver := w.AddrInCity(geo.CityIndex("Cleveland"), 0, 3)
	tokyo := geo.LocationOfCity(geo.CityIndex("Tokyo"))

	r21 := p.Select(MapQuery{ECS: ecsFor(w, "Tokyo", 21), HasECS: true, Resolver: resolver})
	if !r21.UsedECS {
		t.Fatal("/21 must use ECS under CDN-2")
	}
	if d := geo.DistanceKm(r21.Edges[0].Loc, tokyo); d > 1500 {
		t.Fatalf("/21 answer %.0f km from Tokyo", d)
	}
	if r21.Scope != 21 {
		t.Fatalf("scope = %d, want 21", r21.Scope)
	}
	r20 := p.Select(MapQuery{ECS: ecsFor(w, "Tokyo", 20), HasECS: true, Resolver: resolver})
	if r20.UsedECS {
		t.Fatal("/20 must fall back under CDN-2")
	}
	// Fallback is resolver proximity: near Cleveland, not Tokyo.
	cle := geo.LocationOfCity(geo.CityIndex("Cleveland"))
	if dNear, dFar := geo.DistanceKm(r20.Edges[0].Loc, cle), geo.DistanceKm(r20.Edges[0].Loc, tokyo); dNear > dFar {
		t.Fatalf("fallback edge closer to Tokyo (%.0f) than Cleveland (%.0f)", dFar, dNear)
	}
}

func TestGoogleLikeUnroutablePrefixes(t *testing.T) {
	w := testWorld()
	p := NewGoogleLike(w)
	resolver := w.AddrInCity(geo.CityIndex("Cleveland"), 0, 3)
	cle := geo.LocationOfCity(geo.CityIndex("Cleveland"))

	baseline := p.Select(MapQuery{Resolver: resolver})
	if d := geo.DistanceKm(baseline.Edges[0].Loc, cle); d > 1000 {
		t.Fatalf("baseline answer %.0f km from Cleveland", d)
	}
	seen := map[netip.Addr]bool{}
	for _, e := range baseline.Edges {
		seen[e.Addr] = true
	}
	for _, pfx := range []ecsopt.ClientSubnet{
		ecsopt.MustNew(netip.MustParseAddr("127.0.0.1"), 32),
		ecsopt.MustNew(netip.MustParseAddr("127.0.0.0"), 24),
		ecsopt.MustNew(netip.MustParseAddr("169.254.252.0"), 24),
	} {
		r := p.Select(MapQuery{ECS: pfx, HasECS: true, Resolver: resolver})
		if !r.UsedECS {
			t.Fatalf("unroutable prefix %s ignored, want taken at face value", pfx)
		}
		overlap := false
		for _, e := range r.Edges {
			if seen[e.Addr] {
				overlap = true
			}
		}
		if overlap {
			t.Fatalf("unroutable prefix %s answer overlaps baseline set", pfx)
		}
	}
}

func TestRFCCompliantUnroutableHandling(t *testing.T) {
	// CDN-1/2 follow the SHOULD: unroutable prefixes map like the
	// resolver.
	w := testWorld()
	p := NewCDN2(w)
	resolver := w.AddrInCity(geo.CityIndex("Cleveland"), 0, 3)
	loopback := ecsopt.MustNew(netip.MustParseAddr("127.0.0.1"), 32)
	r := p.Select(MapQuery{ECS: loopback, HasECS: true, Resolver: resolver})
	if r.UsedECS {
		t.Fatal("compliant policy must ignore unroutable ECS")
	}
	cle := geo.LocationOfCity(geo.CityIndex("Cleveland"))
	if d := geo.DistanceKm(r.Edges[0].Loc, cle); d > 1000 {
		t.Fatalf("answer %.0f km from Cleveland", d)
	}
}

func TestSelectDeterministic(t *testing.T) {
	w := testWorld()
	p := NewGoogleLike(w)
	q := MapQuery{ECS: ecsFor(w, "Paris", 24), HasECS: true, Resolver: w.AddrInCity(0, 0, 1)}
	a := p.Select(q)
	b := p.Select(q)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range a.Edges {
		if a.Edges[i].Addr != b.Edges[i].Addr {
			t.Fatal("nondeterministic selection")
		}
	}
}

func TestIPv6ECSMapping(t *testing.T) {
	w := testWorld()
	p := NewGoogleLike(w)
	// Find an IPv6 client; derive /56 ECS.
	v6 := w.RandomClientV6(newRand())
	cs := ecsopt.MustNew(v6, 56)
	r := p.Select(MapQuery{ECS: cs, HasECS: true})
	if !r.UsedECS || len(r.Edges) == 0 {
		t.Fatalf("IPv6 ECS not used: %+v", r)
	}
	loc, _ := w.Locate(v6)
	if d := geo.DistanceKm(r.Edges[0].Loc, geo.Location{Lat: loc.Lat, Lon: loc.Lon}); d > 2500 {
		t.Fatalf("IPv6 answer %.0f km from client", d)
	}
	// The Google-like policy answers IPv6 at twice its IPv4 scope cap.
	if r.Scope != 48 {
		t.Fatalf("IPv6 scope = %d, want 48", r.Scope)
	}
}

func newRand() *rand.Rand { return rand.New(rand.NewSource(5)) }
