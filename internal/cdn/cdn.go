// Package cdn models content delivery networks: fleets of edge servers
// placed in cities of the synthetic Internet, and the user-to-edge
// mapping policies the paper probes. Two concrete policies mirror the
// anonymized "CDN-1" and "CDN-2" of §8.3 (proximity mapping only above a
// source-prefix-length threshold, with different fallbacks), and a
// Google-like policy reproduces the Table 2 behavior of mapping
// non-routable ECS prefixes to arbitrary, often intercontinental edges.
package cdn

import (
	"fmt"
	"hash/fnv"
	"net/netip"
	"sort"

	"ecsdns/internal/ecsopt"
	"ecsdns/internal/geo"
)

// Edge is a single edge server.
type Edge struct {
	Addr    netip.Addr
	CityIdx int
	Loc     geo.Location
}

// Deployment is a fleet of edges over the synthetic world.
type Deployment struct {
	Name   string
	world  *geo.Internet
	edges  []Edge
	byCity map[int][]int // city index → indices into edges
	cities []int         // cities with at least one edge, sorted
}

// Deploy places perCity edge servers in each of the given catalog cities.
// Edge addresses come from the city's own address space, so they are
// locatable by the geolocation model. salt decorrelates deployments that
// share cities.
func Deploy(world *geo.Internet, name string, cities []int, perCity, salt int) *Deployment {
	d := &Deployment{
		Name:   name,
		world:  world,
		byCity: make(map[int][]int),
	}
	seen := map[int]bool{}
	for _, ci := range cities {
		if seen[ci] {
			continue
		}
		seen[ci] = true
		for k := 0; k < perCity; k++ {
			addr := world.AddrInCity(ci, salt+k, 200+k)
			d.byCity[ci] = append(d.byCity[ci], len(d.edges))
			d.edges = append(d.edges, Edge{Addr: addr, CityIdx: ci, Loc: geo.LocationOfCity(ci)})
		}
		d.cities = append(d.cities, ci)
	}
	sort.Ints(d.cities)
	return d
}

// DeployGlobal places edges in every catalog city.
func DeployGlobal(world *geo.Internet, name string, perCity, salt int) *Deployment {
	cities := make([]int, len(geo.Cities))
	for i := range cities {
		cities[i] = i
	}
	return Deploy(world, name, cities, perCity, salt)
}

// Edges returns all edges in the deployment.
func (d *Deployment) Edges() []Edge { return d.edges }

// NearestCity returns the deployment city closest to loc.
func (d *Deployment) NearestCity(loc geo.Location) int {
	best, bestD := -1, 0.0
	for _, ci := range d.cities {
		dist := geo.DistanceKm(loc, geo.LocationOfCity(ci))
		if best < 0 || dist < bestD {
			best, bestD = ci, dist
		}
	}
	return best
}

// EdgesInCity returns the edges placed in the given city.
func (d *Deployment) EdgesInCity(ci int) []Edge {
	idx := d.byCity[ci]
	out := make([]Edge, len(idx))
	for i, e := range idx {
		out[i] = d.edges[e]
	}
	return out
}

// NearestEdges returns up to k edges of the city nearest to loc.
func (d *Deployment) NearestEdges(loc geo.Location, k int) []Edge {
	ci := d.NearestCity(loc)
	if ci < 0 {
		return nil
	}
	edges := d.EdgesInCity(ci)
	if k > 0 && len(edges) > k {
		edges = edges[:k]
	}
	return edges
}

// FallbackMode selects what a policy does when it is not using the ECS
// information (option absent, prefix too short, or prefix unroutable).
type FallbackMode int

// Fallback modes.
const (
	// FallbackResolver maps by the recursive resolver's location — the
	// classic pre-ECS behavior (CDN-2's observed fallback).
	FallbackResolver FallbackMode = iota
	// FallbackCentral returns a consistent pick from a small fixed set
	// of central edges regardless of anyone's location (CDN-1's
	// observed non-proximity fallback: 5–14 unique addresses total).
	FallbackCentral
	// FallbackHashGlobal hashes the prefix to an arbitrary deployment
	// city — the behavior that sends Table 2's loopback prefixes to
	// Switzerland and South Africa.
	FallbackHashGlobal
)

// MapQuery is the input to a mapping decision.
type MapQuery struct {
	// ECS is the client subnet from the query; HasECS distinguishes a
	// present-but-zero option from no option.
	ECS    ecsopt.ClientSubnet
	HasECS bool
	// Resolver is the source address of the query (the egress
	// resolver).
	Resolver netip.Addr
}

// MapResult is the outcome of a mapping decision.
type MapResult struct {
	// Edges are the answer addresses, nearest cluster first.
	Edges []Edge
	// Scope is the ECS scope prefix length for the response option
	// (meaningful only when UsedECS).
	Scope uint8
	// UsedECS reports whether the client subnet influenced the choice.
	UsedECS bool
}

// Policy is a user-to-edge mapping policy over a deployment.
type Policy struct {
	D *Deployment
	// MinECSPrefix is the minimum IPv4 source prefix length the policy
	// will act on; shorter prefixes take the fallback path. IPv6
	// prefixes are scaled by ×4 (a /24 threshold becomes /96).
	MinECSPrefix int
	// Fallback is the non-ECS path behavior.
	Fallback FallbackMode
	// CentralCount bounds the central set for FallbackCentral.
	CentralCount int
	// ScopeCap caps the scope returned for ECS answers; 0 means "echo
	// the source prefix". CDN-1 echoes up to 24; CDN-2 answers at /21
	// granularity.
	ScopeCap uint8
	// AnswerCount is how many edge addresses each answer carries.
	AnswerCount int
	// TreatUnroutableAsResolver follows the RFC's SHOULD: unroutable
	// prefixes map like the resolver itself. When false, unroutable
	// prefixes take the fallback path verbatim (hash-global for the
	// Google-like policy).
	TreatUnroutableAsResolver bool
}

// Select maps a query to edges per the policy.
func (p *Policy) Select(q MapQuery) MapResult {
	if p.AnswerCount <= 0 {
		p.AnswerCount = 1
	}
	useECS := q.HasECS && !q.ECS.IsZero()
	if useECS {
		minBits := p.MinECSPrefix
		if q.ECS.Family == ecsopt.FamilyIPv6 {
			minBits *= 4
		}
		if int(q.ECS.SourcePrefix) < minBits {
			useECS = false
		}
	}
	if useECS && !q.ECS.IsRoutable() {
		if p.TreatUnroutableAsResolver {
			useECS = false
		} else {
			// Unroutable prefix taken at face value: it geolocates
			// nowhere, so the mapper degenerates to a hash.
			return MapResult{
				Edges:   p.hashEdges(q.ECS.String()),
				Scope:   p.scopeFor(q.ECS),
				UsedECS: true,
			}
		}
	}
	if useECS {
		loc, ok := p.D.world.Locate(q.ECS.Addr)
		if !ok {
			return MapResult{
				Edges:   p.hashEdges(q.ECS.String()),
				Scope:   p.scopeFor(q.ECS),
				UsedECS: true,
			}
		}
		return MapResult{
			Edges:   p.D.NearestEdges(loc, p.AnswerCount),
			Scope:   p.scopeFor(q.ECS),
			UsedECS: true,
		}
	}
	// Fallback path.
	switch p.Fallback {
	case FallbackCentral:
		// The central pick is consistent per client subnet when one was
		// presented (the paper observed 5–14 distinct fallback answers
		// across its 800 probe prefixes), else per resolver.
		key := q.Resolver.String()
		if q.HasECS && !q.ECS.IsZero() {
			key = q.ECS.Prefix().Addr().String()
		}
		return MapResult{Edges: p.centralKeyedEdges(key)}
	case FallbackHashGlobal:
		return MapResult{Edges: p.hashEdges(q.Resolver.String())}
	default:
		loc, ok := p.D.world.Locate(q.Resolver)
		if !ok {
			return MapResult{Edges: p.centralEdges(q.Resolver)}
		}
		return MapResult{Edges: p.D.NearestEdges(loc, p.AnswerCount)}
	}
}

func (p *Policy) scopeFor(cs ecsopt.ClientSubnet) uint8 {
	scope := cs.SourcePrefix
	maxV4 := uint8(ecsopt.RecommendedMaxV4)
	if cs.Family == ecsopt.FamilyIPv6 {
		maxV4 = ecsopt.RecommendedMaxV6
	}
	if scope > maxV4 {
		scope = maxV4
	}
	if p.ScopeCap != 0 {
		limit := p.ScopeCap
		if cs.Family == ecsopt.FamilyIPv6 {
			limit *= 2
		}
		if scope > limit {
			scope = limit
		}
	}
	return scope
}

// centralEdges returns a deterministic pick from a small central set: the
// deployment's first CentralCount cities in catalog order.
func (p *Policy) centralEdges(key netip.Addr) []Edge {
	return p.centralKeyedEdges(key.String())
}

func (p *Policy) centralKeyedEdges(key string) []Edge {
	n := p.CentralCount
	if n <= 0 {
		n = 8
	}
	if n > len(p.D.cities) {
		n = len(p.D.cities)
	}
	if n == 0 {
		return nil
	}
	h := fnv.New32a()
	fmt.Fprint(h, key)
	ci := p.D.cities[int(h.Sum32())%n]
	edges := p.D.EdgesInCity(ci)
	if len(edges) > p.AnswerCount {
		edges = edges[:p.AnswerCount]
	}
	return edges
}

// hashEdges hashes an opaque key to an arbitrary deployment city.
func (p *Policy) hashEdges(key string) []Edge {
	if len(p.D.cities) == 0 {
		return nil
	}
	h := fnv.New32a()
	fmt.Fprint(h, key)
	ci := p.D.cities[int(h.Sum32())%len(p.D.cities)]
	edges := p.D.EdgesInCity(ci)
	if len(edges) > p.AnswerCount {
		edges = edges[:p.AnswerCount]
	}
	return edges
}

// NewCDN1 builds the CDN-1 policy of §8.3: proximity mapping only for
// source prefixes of at least 24 bits; anything shorter gets a
// non-proximity answer from a handful of central edges. Scope echoes the
// source up to /24.
func NewCDN1(world *geo.Internet) *Policy {
	return &Policy{
		D:                         DeployGlobal(world, "cdn1", 8, 101),
		MinECSPrefix:              24,
		Fallback:                  FallbackCentral,
		CentralCount:              8,
		ScopeCap:                  24,
		AnswerCount:               2,
		TreatUnroutableAsResolver: true,
	}
}

// NewCDN2 builds the CDN-2 policy of §8.3: ECS honored for prefixes of at
// least 21 bits with /21-granularity scope; shorter prefixes fall back to
// resolver-based proximity with scope zero.
func NewCDN2(world *geo.Internet) *Policy {
	return &Policy{
		D:                         DeployGlobal(world, "cdn2", 1, 202),
		MinECSPrefix:              21,
		Fallback:                  FallbackResolver,
		ScopeCap:                  21,
		AnswerCount:               1,
		TreatUnroutableAsResolver: true,
	}
}

// NewGoogleLike builds the Table 2 authoritative behavior: proximity
// mapping for routable prefixes and resolver addresses, but unroutable
// ECS prefixes are taken at face value and hash to arbitrary edges across
// the globe.
func NewGoogleLike(world *geo.Internet) *Policy {
	return &Policy{
		D:                         DeployGlobal(world, "google-like", 16, 303),
		MinECSPrefix:              1,
		Fallback:                  FallbackResolver,
		ScopeCap:                  24,
		AnswerCount:               16,
		TreatUnroutableAsResolver: false,
	}
}
