package dnswire

import (
	"bytes"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleResponse() *Message {
	q := NewQuery(0x1234, MustParseName("www.example.com"), TypeA)
	r := NewResponse(q)
	r.Authoritative = true
	r.Answers = []RR{
		{
			Name: "www.example.com.", Class: ClassINET, TTL: 20,
			Data: &CNAMERData{Target: "edge.cdn.example.net."},
		},
		{
			Name: "edge.cdn.example.net.", Class: ClassINET, TTL: 20,
			Data: &ARData{Addr: netip.MustParseAddr("192.0.2.17")},
		},
	}
	r.Authorities = []RR{
		{
			Name: "cdn.example.net.", Class: ClassINET, TTL: 3600,
			Data: &NSRData{Host: "ns1.cdn.example.net."},
		},
	}
	r.Additionals = []RR{
		{
			Name: "ns1.cdn.example.net.", Class: ClassINET, TTL: 3600,
			Data: &ARData{Addr: netip.MustParseAddr("198.51.100.53")},
		},
	}
	return r
}

func TestMessageRoundTrip(t *testing.T) {
	t.Parallel()
	m := sampleResponse()
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m, got) {
		t.Fatalf("round trip mismatch:\nsent: %v\ngot:  %v", m, got)
	}
}

func TestQueryRoundTrip(t *testing.T) {
	t.Parallel()
	q := NewQuery(7, MustParseName("probe-1-2-3-4.scan.example.org"), TypeAAAA)
	data, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Response || got.ID != 7 || !got.RecursionDesired {
		t.Fatalf("header mismatch: %+v", got.Header)
	}
	if got.Question() != q.Question() {
		t.Fatalf("question mismatch: %v vs %v", got.Question(), q.Question())
	}
}

func TestCompressionShrinksMessages(t *testing.T) {
	t.Parallel()
	m := sampleResponse()
	packed, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	flat, err := m.PackNoCompress()
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) >= len(flat) {
		t.Fatalf("compression did not shrink: %d vs %d", len(packed), len(flat))
	}
	// Both forms must decode identically.
	a, err := Unpack(packed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Unpack(flat)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("compressed and uncompressed decode differently")
	}
}

func TestAllRDataTypesRoundTrip(t *testing.T) {
	t.Parallel()
	rrs := []RR{
		{Name: "a.example.", Class: ClassINET, TTL: 1, Data: &ARData{Addr: netip.MustParseAddr("10.1.2.3")}},
		{Name: "aaaa.example.", Class: ClassINET, TTL: 2, Data: &AAAARData{Addr: netip.MustParseAddr("2001:db8::1")}},
		{Name: "cn.example.", Class: ClassINET, TTL: 3, Data: &CNAMERData{Target: "t.example."}},
		{Name: "ns.example.", Class: ClassINET, TTL: 4, Data: &NSRData{Host: "ns1.example."}},
		{Name: "ptr.example.", Class: ClassINET, TTL: 5, Data: &PTRRData{Target: "host.example."}},
		{Name: "mx.example.", Class: ClassINET, TTL: 6, Data: &MXRData{Preference: 10, Host: "mail.example."}},
		{Name: "txt.example.", Class: ClassINET, TTL: 7, Data: &TXTRData{Strings: []string{"hello", "world"}}},
		{Name: "soa.example.", Class: ClassINET, TTL: 8, Data: &SOARData{
			MName: "ns1.example.", RName: "hostmaster.example.",
			Serial: 2019102101, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 60,
		}},
		{Name: "raw.example.", Class: ClassINET, TTL: 9, Data: &UnknownRData{T: Type(999), Raw: []byte{1, 2, 3}}},
	}
	m := &Message{Header: Header{ID: 1, Response: true}, Answers: rrs}
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(m.Answers, got.Answers) {
		t.Fatalf("answers mismatch:\n%v\n%v", m.Answers, got.Answers)
	}
}

func TestHeaderFlagsRoundTrip(t *testing.T) {
	t.Parallel()
	check := func(h Header) bool {
		h.OpCode &= 0xF
		h.RCode &= 0xF // without EDNS only 4 bits travel
		m := &Message{Header: h}
		data, err := m.Pack()
		if err != nil {
			return false
		}
		got, err := Unpack(data)
		if err != nil {
			return false
		}
		return got.Header == h
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestExtendedRCodeViaEDNS(t *testing.T) {
	t.Parallel()
	m := &Message{Header: Header{ID: 9, Response: true, RCode: RCodeBadVers}}
	m.EDNS = NewEDNS()
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.RCode != RCodeBadVers {
		t.Fatalf("extended rcode = %v, want BADVERS", got.RCode)
	}
	if got.EDNS == nil || got.EDNS.UDPSize != 4096 {
		t.Fatalf("EDNS not preserved: %+v", got.EDNS)
	}
}

func TestEDNSOptionsRoundTrip(t *testing.T) {
	t.Parallel()
	m := NewQuery(3, "example.com.", TypeA)
	m.EDNS = NewEDNS()
	m.EDNS.DO = true
	m.EDNS.SetOption(Option{Code: OptionCodeECS, Data: []byte{0, 1, 24, 0, 192, 0, 2}})
	m.EDNS.SetOption(Option{Code: OptionCodeCookie, Data: []byte{1, 2, 3, 4, 5, 6, 7, 8}})
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.EDNS == nil || !got.EDNS.DO {
		t.Fatalf("EDNS flags lost: %+v", got.EDNS)
	}
	o, ok := got.EDNS.Option(OptionCodeECS)
	if !ok || !bytes.Equal(o.Data, []byte{0, 1, 24, 0, 192, 0, 2}) {
		t.Fatalf("ECS option lost: %v %v", ok, o)
	}
	if _, ok := got.EDNS.Option(OptionCodeCookie); !ok {
		t.Fatal("cookie option lost")
	}
}

func TestEDNSSetAndRemoveOption(t *testing.T) {
	t.Parallel()
	e := NewEDNS()
	e.SetOption(Option{Code: 8, Data: []byte{1}})
	e.SetOption(Option{Code: 8, Data: []byte{2}})
	if len(e.Options) != 1 || e.Options[0].Data[0] != 2 {
		t.Fatalf("SetOption did not replace: %v", e.Options)
	}
	if !e.RemoveOption(8) {
		t.Fatal("RemoveOption returned false for present option")
	}
	if e.RemoveOption(8) {
		t.Fatal("RemoveOption returned true for absent option")
	}
}

func TestUnpackRejectsMalformed(t *testing.T) {
	t.Parallel()
	valid, err := sampleResponse().Pack()
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		nil,
		{},
		valid[:5],            // mid-header
		valid[:len(valid)-3], // mid-record
		append(append([]byte{}, valid...), 0xde, 0xad), // trailing garbage
	}
	for i, c := range cases {
		if _, err := Unpack(c); err == nil {
			t.Errorf("case %d: malformed message accepted", i)
		}
	}
}

func TestUnpackRejectsCountBomb(t *testing.T) {
	t.Parallel()
	// Header claiming 65535 answers with no body.
	hdr := []byte{0, 1, 0x80, 0, 0, 0, 0xFF, 0xFF, 0, 0, 0, 0}
	if _, err := Unpack(hdr); err != ErrTooManyRRs {
		t.Fatalf("count bomb: got %v, want ErrTooManyRRs", err)
	}
}

func TestUnpackRejectsPointerLoop(t *testing.T) {
	t.Parallel()
	// A question name that is a pointer to itself at offset 12.
	msg := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0xC0, 12, // pointer to itself
		0, 1, 0, 1,
	}
	if _, err := Unpack(msg); err == nil {
		t.Fatal("self-pointer accepted")
	}
}

func TestUnpackRejectsForwardPointer(t *testing.T) {
	t.Parallel()
	msg := []byte{
		0, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
		0xC0, 14, // forward pointer
		0, 1, 0, 1,
	}
	if _, err := Unpack(msg); err == nil {
		t.Fatal("forward pointer accepted")
	}
}

func TestUnpackCaseFolds(t *testing.T) {
	t.Parallel()
	m := NewQuery(1, "example.com.", TypeA)
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Upper-case the first label byte on the wire ('e' at offset 13).
	if data[13] != 'e' {
		t.Fatalf("unexpected wire layout: %x", data)
	}
	data[13] = 'E'
	got, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Question().Name != "example.com." {
		t.Fatalf("case not folded: %q", got.Question().Name)
	}
}

func TestTruncateTo(t *testing.T) {
	t.Parallel()
	m := sampleResponse()
	for i := 0; i < 40; i++ {
		m.Answers = append(m.Answers, RR{
			Name: "edge.cdn.example.net.", Class: ClassINET, TTL: 20,
			Data: &ARData{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})},
		})
	}
	data, err := m.TruncateTo(512)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 512 {
		t.Fatalf("truncated message still %d bytes", len(data))
	}
	got, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Truncated {
		t.Fatal("TC flag not set after truncation")
	}
	if len(got.Answers) == 0 {
		t.Fatal("all answers dropped unnecessarily")
	}
}

func TestTruncateToNoOpWhenSmall(t *testing.T) {
	t.Parallel()
	m := sampleResponse()
	data, err := m.TruncateTo(512)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Truncated {
		t.Fatal("TC set although message fit")
	}
}

func TestUnpackFuzzDoesNotPanic(t *testing.T) {
	t.Parallel()
	rng := rand.New(rand.NewSource(42))
	valid, err := sampleResponse().Pack()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		buf := make([]byte, len(valid))
		copy(buf, valid)
		// Flip a handful of random bytes.
		for j := 0; j < 4; j++ {
			buf[rng.Intn(len(buf))] = byte(rng.Intn(256))
		}
		m, err := Unpack(buf)
		if err == nil {
			// If it decoded, it must re-encode without panicking.
			if _, err := m.Pack(); err != nil && err != errTooManySections {
				t.Fatalf("repack of decoded message failed: %v", err)
			}
		}
	}
}

func TestMessageStringSmoke(t *testing.T) {
	t.Parallel()
	m := sampleResponse()
	m.EDNS = NewEDNS()
	s := m.String()
	for _, want := range []string{"QUERY response", "ANSWER", "AUTHORITY", "ADDITIONAL", "EDNS"} {
		if !bytes.Contains([]byte(s), []byte(want)) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
}

func TestTypeClassRCodeStrings(t *testing.T) {
	t.Parallel()
	if TypeA.String() != "A" || Type(4242).String() != "TYPE4242" {
		t.Error("Type.String misbehaves")
	}
	if ClassINET.String() != "IN" || Class(77).String() != "CLASS77" {
		t.Error("Class.String misbehaves")
	}
	if RCodeNXDomain.String() != "NXDOMAIN" || RCode(99).String() != "RCODE99" {
		t.Error("RCode.String misbehaves")
	}
	if OpQuery.String() != "QUERY" || OpCode(7).String() != "OPCODE7" {
		t.Error("OpCode.String misbehaves")
	}
}

func TestPeekPatchID(t *testing.T) {
	t.Parallel()
	msg := sampleResponse()
	msg.Header.ID = 0xBEEF
	wire, err := msg.Pack()
	if err != nil {
		t.Fatal(err)
	}
	id, ok := PeekID(wire)
	if !ok || id != 0xBEEF {
		t.Fatalf("PeekID = %#x, %v; want 0xbeef, true", id, ok)
	}
	if !PatchID(wire, 0x1234) {
		t.Fatal("PatchID rejected a full message")
	}
	if id, _ := PeekID(wire); id != 0x1234 {
		t.Fatalf("after PatchID, PeekID = %#x, want 0x1234", id)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("patched message no longer unpacks: %v", err)
	}
	if got.Header.ID != 0x1234 {
		t.Fatalf("unpacked ID = %#x, want 0x1234", got.Header.ID)
	}

	// Both reject buffers shorter than a DNS header.
	short := make([]byte, 11)
	if _, ok := PeekID(short); ok {
		t.Error("PeekID accepted a truncated header")
	}
	if PatchID(short, 1) {
		t.Error("PatchID accepted a truncated header")
	}
}

func TestUnpackRejectsBadLabelBytes(t *testing.T) {
	t.Parallel()
	// A '.' or control byte inside a wire label has no unambiguous
	// presentation form, so the decoder must reject it (fuzz-found: such
	// names re-encoded as different labels and broke the repack round
	// trip).
	header := []byte{0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0}
	for _, label := range [][]byte{
		{3, 'a', '.', 'b'},
		{3, 'a', 0x1f, 'b'},
		{3, 'a', ' ', 'b'},
		{3, 'a', 127, 'b'},
	} {
		wire := append(append(append([]byte{}, header...), label...),
			0, 0, 1, 0, 1) // root, qtype A, qclass IN
		if _, err := Unpack(wire); err == nil {
			t.Errorf("Unpack accepted label % x", label)
		}
	}
}
