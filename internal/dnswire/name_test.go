package dnswire

import (
	"strings"
	"testing"
)

func TestParseNameCanonicalizes(t *testing.T) {
	cases := []struct {
		in   string
		want Name
	}{
		{"example.com", "example.com."},
		{"example.com.", "example.com."},
		{"EXAMPLE.COM", "example.com."},
		{"WwW.Example.Com.", "www.example.com."},
		{".", "."},
		{"a", "a."},
		{"xn--nxasmq6b.example", "xn--nxasmq6b.example."},
		{"1-2-3-4.scan.example.org", "1-2-3-4.scan.example.org."},
	}
	for _, c := range cases {
		got, err := ParseName(c.in)
		if err != nil {
			t.Errorf("ParseName(%q): unexpected error %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseName(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseNameErrors(t *testing.T) {
	long := strings.Repeat("a", 64)
	okLabel := strings.Repeat("b", 63)
	tooLong := strings.Repeat(okLabel+".", 4) // 4*64 = 256 > 255
	cases := []struct {
		in  string
		err error
	}{
		{"", ErrEmptyName},
		{"..", ErrEmptyLabel},
		{"a..b", ErrEmptyLabel},
		{long + ".com", ErrLabelTooLong},
		{tooLong, ErrNameTooLong},
		{"bad label.com", ErrBadLabelChar},
		{"tab\tlabel.com", ErrBadLabelChar},
	}
	for _, c := range cases {
		_, err := ParseName(c.in)
		if err != c.err {
			t.Errorf("ParseName(%q) error = %v, want %v", c.in, err, c.err)
		}
	}
}

func TestNameMaxLengthBoundary(t *testing.T) {
	// 253 presentation characters plus root: exactly 255 wire octets.
	label := strings.Repeat("a", 63)
	n := label + "." + label + "." + label + "." + strings.Repeat("a", 61)
	if _, err := ParseName(n); err != nil {
		t.Fatalf("255-octet name rejected: %v", err)
	}
	if _, err := ParseName(n + "a"); err != ErrNameTooLong {
		t.Fatalf("256-octet name: got %v, want ErrNameTooLong", err)
	}
}

func TestNameLabels(t *testing.T) {
	n := MustParseName("www.example.com")
	labels := n.Labels()
	want := []string{"www", "example", "com"}
	if len(labels) != len(want) {
		t.Fatalf("Labels() = %v, want %v", labels, want)
	}
	for i := range want {
		if labels[i] != want[i] {
			t.Fatalf("Labels()[%d] = %q, want %q", i, labels[i], want[i])
		}
	}
	if got := n.CountLabels(); got != 3 {
		t.Errorf("CountLabels() = %d, want 3", got)
	}
	if got := Root.CountLabels(); got != 0 {
		t.Errorf("root CountLabels() = %d, want 0", got)
	}
	if Root.Labels() != nil {
		t.Errorf("root Labels() = %v, want nil", Root.Labels())
	}
}

func TestNameParent(t *testing.T) {
	cases := []struct{ in, want Name }{
		{"www.example.com.", "example.com."},
		{"example.com.", "com."},
		{"com.", "."},
		{".", "."},
	}
	for _, c := range cases {
		if got := c.in.Parent(); got != c.want {
			t.Errorf("%q.Parent() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestIsSubdomainOf(t *testing.T) {
	cases := []struct {
		n, zone Name
		want    bool
	}{
		{"www.example.com.", "example.com.", true},
		{"example.com.", "example.com.", true},
		{"example.com.", "www.example.com.", false},
		{"notexample.com.", "example.com.", false},
		{"aexample.com.", "example.com.", false},
		{"anything.org.", ".", true},
		{".", ".", true},
	}
	for _, c := range cases {
		if got := c.n.IsSubdomainOf(c.zone); got != c.want {
			t.Errorf("%q.IsSubdomainOf(%q) = %v, want %v", c.n, c.zone, got, c.want)
		}
	}
}

func TestSLD(t *testing.T) {
	cases := []struct{ in, want Name }{
		{"www.cnn.com.", "cnn.com."},
		{"a.b.c.d.ac.uk.", "ac.uk."},
		{"cnn.com.", "cnn.com."},
		{"com.", "com."},
		{".", "."},
	}
	for _, c := range cases {
		if got := c.in.SLD(); got != c.want {
			t.Errorf("%q.SLD() = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestPrepend(t *testing.T) {
	n := MustParseName("example.com")
	got, err := n.Prepend("www")
	if err != nil {
		t.Fatal(err)
	}
	if got != "www.example.com." {
		t.Fatalf("Prepend = %q", got)
	}
	got, err = Root.Prepend("com")
	if err != nil {
		t.Fatal(err)
	}
	if got != "com." {
		t.Fatalf("Prepend on root = %q", got)
	}
	if _, err := n.Prepend("bad label"); err == nil {
		t.Fatal("Prepend with invalid label: want error")
	}
}

func TestMustParseNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseName on invalid input did not panic")
		}
	}()
	MustParseName("")
}
