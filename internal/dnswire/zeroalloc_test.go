package dnswire

import (
	"net/netip"
	"testing"
)

// scanQuery builds the message shape the scan pipeline encodes on every
// probe: one question plus an EDNS OPT carrying an ECS-sized option.
func scanQuery() *Message {
	m := NewQuery(0x1234, "p-7.scan.example.org.", TypeA)
	e := NewEDNS()
	e.SetOption(Option{
		Code: OptionCodeECS,
		Data: []byte{0x00, 0x01, 0x18, 0x00, 0xc0, 0x00, 0x02},
	})
	m.EDNS = e
	return m
}

// scanResponse builds a typical authoritative answer to scanQuery: the
// shape the pipeline decodes on every receive.
func scanResponse(t testing.TB) []byte {
	q := scanQuery()
	r := NewResponse(q)
	r.RecursionAvailable = true
	r.Answers = append(r.Answers, RR{
		Name: q.Question().Name, Class: ClassINET, TTL: 300,
		Data: &ARData{Addr: netip.MustParseAddr("192.0.2.53")},
	})
	r.EDNS = NewEDNS()
	r.EDNS.SetOption(Option{
		Code: OptionCodeECS,
		Data: []byte{0x00, 0x01, 0x18, 0x18, 0xc0, 0x00, 0x02},
	})
	wire, err := r.Pack()
	if err != nil {
		t.Fatalf("pack response: %v", err)
	}
	return wire
}

// The allocation gates below are regression tests, not benchmarks: they
// fail the build the moment a future change makes the steady-state
// encode or decode path allocate, which is the property the scan
// pipeline's throughput rests on.

func TestAllocGateAppendPack(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	m := scanQuery()
	buf := make([]byte, 0, 512)
	// Warm the builder pool and verify the path works at all.
	out, err := m.AppendPack(buf[:0])
	if err != nil {
		t.Fatalf("AppendPack: %v", err)
	}
	if len(out) == 0 {
		t.Fatal("AppendPack produced no bytes")
	}
	allocs := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = m.AppendPack(buf[:0])
		if err != nil {
			t.Errorf("AppendPack: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state AppendPack allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestAllocGateUnpackInto(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	wire := scanResponse(t)
	m := &Message{}
	// First decode populates the Message; every following decode of the
	// same shape must reuse it entirely.
	if err := UnpackInto(m, wire); err != nil {
		t.Fatalf("UnpackInto: %v", err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := UnpackInto(m, wire); err != nil {
			t.Errorf("UnpackInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state UnpackInto allocates %.1f allocs/op, want 0", allocs)
	}
}

func TestAllocGateRoundTrip(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under the race detector")
	}
	// The combined hot loop the pipeline runs per query: patch the ID of
	// a cached wire template, then decode the response in place.
	wire := scanResponse(t)
	query, err := scanQuery().Pack()
	if err != nil {
		t.Fatalf("pack query: %v", err)
	}
	m := &Message{}
	if err := UnpackInto(m, wire); err != nil {
		t.Fatalf("UnpackInto: %v", err)
	}
	id := uint16(1)
	allocs := testing.AllocsPerRun(200, func() {
		id++
		if !PatchID(query, id) {
			t.Error("PatchID failed")
		}
		if err := UnpackInto(m, wire); err != nil {
			t.Errorf("UnpackInto: %v", err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state patch+decode allocates %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkPack(b *testing.B) {
	m := scanQuery()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendPack(b *testing.B) {
	m := scanQuery()
	buf := make([]byte, 0, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = m.AppendPack(buf[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpack(b *testing.B) {
	wire := scanResponse(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnpackInto(b *testing.B) {
	wire := scanResponse(b)
	m := &Message{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := UnpackInto(m, wire); err != nil {
			b.Fatal(err)
		}
	}
}
