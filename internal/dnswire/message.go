package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Header is the parsed DNS message header (RFC 1035 §4.1.1) minus the
// section counts, which are derived from the slices in Message.
type Header struct {
	ID                 uint16
	Response           bool
	OpCode             OpCode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	AuthenticData      bool
	CheckingDisabled   bool
	RCode              RCode // full extended rcode; upper bits go to EDNS
}

// Question is a single query in the question section.
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

// String returns "name type class".
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// RR is a resource record in any of the answer, authority, or additional
// sections. OPT pseudo-records are not represented as RRs; they surface as
// Message.EDNS.
type RR struct {
	Name  Name
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the record type, taken from the typed payload.
func (rr RR) Type() Type {
	if rr.Data == nil {
		return TypeNone
	}
	return rr.Data.Type()
}

// String returns a zone-file-style one-line rendering.
func (rr RR) String() string {
	return fmt.Sprintf("%s %d %s %s %s", rr.Name, rr.TTL, rr.Class, rr.Type(), rr.Data)
}

// Message is a complete DNS message. The EDNS field, when non-nil, is
// serialized as an OPT pseudo-record in the additional section; decoded
// OPT records are lifted out of Additionals into EDNS.
type Message struct {
	Header
	Questions   []Question
	Answers     []RR
	Authorities []RR
	Additionals []RR
	EDNS        *EDNS
}

// Question returns the first question, or a zero Question if none.
func (m *Message) Question() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// Pack encodes m into wire format with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.appendPack(make([]byte, 0, 512), true)
}

// PackNoCompress encodes m without name compression; it exists so the
// compression ablation benchmark can quantify the savings.
func (m *Message) PackNoCompress() ([]byte, error) {
	return m.appendPack(make([]byte, 0, 512), false)
}

// AppendPack encodes m with name compression, appending the wire bytes
// to buf and returning the extended slice (which may have been
// reallocated, exactly like append). The encoded output is
// byte-identical to Pack: compression offsets are computed relative to
// the message start, so buf may already carry a prefix (a TCP length
// frame, earlier datagram payload). With a reused buffer of sufficient
// capacity the steady-state encode path performs zero allocations.
//
// The returned slice aliases buf's backing array; the caller owns it
// and must not hand it to a consumer that outlives the buffer's reuse
// cycle without copying.
//
//ecsalloc:zero
func (m *Message) AppendPack(buf []byte) ([]byte, error) {
	return m.appendPack(buf, true)
}

var errTooManySections = errors.New("dnswire: section exceeds 65535 records")
var errMessageTooLong = errors.New("dnswire: message exceeds 65535 bytes")
var errNilRData = errors.New("dnswire: record with nil rdata")
var errRDataTooLong = errors.New("dnswire: rdata exceeds 65535 bytes")
var errTruncateSizeTooSmall = errors.New("dnswire: truncation size below header size")
var errTruncateHeaderTooBig = errors.New("dnswire: header alone exceeds truncation size")

func (m *Message) appendPack(buf []byte, compress bool) ([]byte, error) {
	b := acquireBuilder(buf)
	out, err := m.packInto(b, compress)
	releaseBuilder(b)
	return out, err
}

func (m *Message) packInto(b *builder, compress bool) ([]byte, error) {
	b.uint16(m.ID)
	flags1 := uint8(0)
	if m.Response {
		flags1 |= 0x80
	}
	flags1 |= uint8(m.OpCode&0xF) << 3
	if m.Authoritative {
		flags1 |= 0x04
	}
	if m.Truncated {
		flags1 |= 0x02
	}
	if m.RecursionDesired {
		flags1 |= 0x01
	}
	b.uint8(flags1)
	flags2 := uint8(m.RCode & 0xF)
	if m.RecursionAvailable {
		flags2 |= 0x80
	}
	if m.AuthenticData {
		flags2 |= 0x20
	}
	if m.CheckingDisabled {
		flags2 |= 0x10
	}
	b.uint8(flags2)

	nAdd := len(m.Additionals)
	if m.EDNS != nil {
		nAdd++
	}
	for _, n := range []int{len(m.Questions), len(m.Answers), len(m.Authorities), nAdd} {
		if n > 65535 {
			return nil, errTooManySections
		}
	}
	b.uint16(uint16(len(m.Questions)))
	b.uint16(uint16(len(m.Answers)))
	b.uint16(uint16(len(m.Authorities)))
	b.uint16(uint16(nAdd))

	for _, q := range m.Questions {
		b.nameOpt(q.Name, compress)
		b.uint16(uint16(q.Type))
		b.uint16(uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answers, m.Authorities, m.Additionals} {
		for _, rr := range sec {
			if err := packRR(b, rr, compress); err != nil {
				return nil, err
			}
		}
	}
	if m.EDNS != nil {
		m.EDNS.encode(b, m.RCode)
	}
	if b.msgLen() > MaxMessageSize {
		return nil, errMessageTooLong
	}
	return b.buf, nil
}

func packRR(b *builder, rr RR, compress bool) error {
	if rr.Data == nil {
		return errNilRData
	}
	b.nameOpt(rr.Name, compress)
	b.uint16(uint16(rr.Type()))
	b.uint16(uint16(rr.Class))
	b.uint32(rr.TTL)
	lenOff := len(b.buf)
	b.uint16(0) // rdlength placeholder
	rr.Data.encode(b)
	rdlen := len(b.buf) - lenOff - 2
	if rdlen > 65535 {
		return errRDataTooLong
	}
	b.buf[lenOff] = uint8(rdlen >> 8)
	b.buf[lenOff+1] = uint8(rdlen)
	return nil
}

// PeekID reads the transaction ID from a packed message without a full
// Unpack, for transports that must answer or demux on packets that may
// not parse past the header. ok is false when the packet is shorter
// than a DNS header.
func PeekID(wire []byte) (id uint16, ok bool) {
	if len(wire) < headerLen {
		return 0, false
	}
	return uint16(wire[0])<<8 | uint16(wire[1]), true
}

// PatchID rewrites the transaction ID of a packed message in place, so
// a transport can re-send one packed query under fresh IDs without
// re-packing. It reports whether the packet was long enough to patch.
func PatchID(wire []byte, id uint16) bool {
	if len(wire) < headerLen {
		return false
	}
	wire[0] = uint8(id >> 8)
	wire[1] = uint8(id)
	return true
}

// headerLen is the fixed DNS header size (RFC 1035 §4.1.1).
const headerLen = 12

// PeekHeader reads the transaction ID and the QR (response) bit from a
// packed message without a full Unpack, so a transport read loop can
// demux raw datagrams before paying for a parse. ok is false when the
// packet is shorter than a DNS header.
func PeekHeader(wire []byte) (id uint16, response bool, ok bool) {
	if len(wire) < headerLen {
		return 0, false, false
	}
	return uint16(wire[0])<<8 | uint16(wire[1]), wire[2]&0x80 != 0, true
}

// skipName advances past the name encoded at off without decoding it.
func skipName(msg []byte, off int) (int, error) {
	for {
		if off >= len(msg) {
			return 0, ErrShortMessage
		}
		c := msg[off]
		switch {
		case c == 0:
			return off + 1, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return 0, ErrShortMessage
			}
			return off + 2, nil
		case c&0xC0 != 0:
			return 0, errReservedLabel
		default:
			off += 1 + int(c)
		}
	}
}

// FindOption locates the data bytes of the first EDNS option with the
// given code inside a packed message, returning the offset of the
// option data within msg and its length. It walks the message without
// decoding it, so transports can record option positions (e.g. the ECS
// payload inside a cached query template) for in-place patching later.
func FindOption(msg []byte, code uint16) (off, n int, ok bool) {
	if len(msg) < headerLen {
		return 0, 0, false
	}
	p := &parser{msg: msg, off: 4}
	var counts [4]int
	for i := range counts {
		c, err := p.uint16()
		if err != nil {
			return 0, 0, false
		}
		counts[i] = int(c)
	}
	for i := 0; i < counts[0]; i++ {
		next, err := skipName(msg, p.off)
		if err != nil {
			return 0, 0, false
		}
		p.off = next + 4
	}
	for i := 0; i < counts[1]+counts[2]+counts[3]; i++ {
		next, err := skipName(msg, p.off)
		if err != nil {
			return 0, 0, false
		}
		p.off = next
		t, err := p.uint16()
		if err != nil {
			return 0, 0, false
		}
		p.off += 6 // class + ttl
		rdlen, err := p.uint16()
		if err != nil {
			return 0, 0, false
		}
		end := p.off + int(rdlen)
		if end > len(msg) {
			return 0, 0, false
		}
		if Type(t) != TypeOPT {
			p.off = end
			continue
		}
		for p.off < end {
			oc, err := p.uint16()
			if err != nil {
				return 0, 0, false
			}
			olen, err := p.uint16()
			if err != nil || p.off+int(olen) > end {
				return 0, 0, false
			}
			if oc == code {
				return p.off, int(olen), true
			}
			p.off += int(olen)
		}
		p.off = end
	}
	return 0, 0, false
}

// Decode errors shared by Unpack and UnpackInto.
var (
	errOPTOutsideAdditional = errors.New("dnswire: OPT record outside additional section")
	errDuplicateOPT         = errors.New("dnswire: duplicate OPT record")
)

// Unpack decodes a wire-format DNS message.
func Unpack(data []byte) (*Message, error) {
	m := &Message{}
	if err := UnpackInto(m, data); err != nil {
		return nil, err
	}
	return m, nil
}

// UnpackInto decodes a wire-format DNS message into m, reusing the
// memory a previous decode left behind: section slices are truncated
// and re-extended in place, rdata payloads of matching types are
// overwritten rather than reallocated, and name strings that decode to
// the same bytes keep the existing allocation. Decoding the same shape
// of message into a reused Message is therefore allocation-free — the
// property the scan pipeline's receive path is built on.
//
// Unpack is UnpackInto on a zero Message; both produce structurally
// identical results (reflect.DeepEqual) for identical wire input. On
// error m's contents are undefined. The caller owns m and everything
// it references; a subsequent UnpackInto on the same Message
// invalidates names, rdata, and option payloads from the previous
// decode.
//
//ecsalloc:zero
func UnpackInto(m *Message, data []byte) error {
	st := unpackPool.Get().(*unpackState)
	err := unpackInto(m, data, st)
	unpackPool.Put(st)
	return err
}

func unpackInto(m *Message, data []byte, st *unpackState) error {
	//ecsalloc:sink parser never escapes the decode tree and stays on the stack
	p := &parser{msg: data, st: st}
	id, err := p.uint16()
	if err != nil {
		return err
	}
	m.ID = id
	f1, err := p.uint8()
	if err != nil {
		return err
	}
	f2, err := p.uint8()
	if err != nil {
		return err
	}
	m.Response = f1&0x80 != 0
	m.OpCode = OpCode((f1 >> 3) & 0xF)
	m.Authoritative = f1&0x04 != 0
	m.Truncated = f1&0x02 != 0
	m.RecursionDesired = f1&0x01 != 0
	m.RecursionAvailable = f2&0x80 != 0
	m.AuthenticData = f2&0x20 != 0
	m.CheckingDisabled = f2&0x10 != 0
	m.RCode = RCode(f2 & 0xF)

	var counts [4]int
	for i := range counts {
		c, err := p.uint16()
		if err != nil {
			return err
		}
		counts[i] = int(c)
	}
	// Each question needs ≥5 bytes, each RR ≥11; a cheap bound that stops
	// count-based allocation bombs before any allocation happens.
	if counts[0]*5+(counts[1]+counts[2]+counts[3])*11 > p.remaining() {
		return ErrTooManyRRs
	}

	m.Questions = m.Questions[:0]
	for i := 0; i < counts[0]; i++ {
		var q *Question
		m.Questions, q = grow(m.Questions)
		n, err := p.name(q.Name)
		if err != nil {
			return err
		}
		t, err := p.uint16()
		if err != nil {
			return err
		}
		c, err := p.uint16()
		if err != nil {
			return err
		}
		q.Name, q.Type, q.Class = n, Type(t), Class(c)
	}

	// The old EDNS struct (if any) is the reuse candidate for this
	// decode's OPT record; m.EDNS itself doubles as the duplicate-OPT
	// sentinel.
	oldEDNS := m.EDNS
	m.EDNS = nil
	sections := [3]*[]RR{&m.Answers, &m.Authorities, &m.Additionals}
	for si, sec := range sections {
		*sec = (*sec)[:0]
		for i := 0; i < counts[si+1]; i++ {
			var slot *RR
			*sec, slot = grow(*sec)
			opt, err := unpackRRInto(p, slot, oldEDNS)
			if err != nil {
				return err
			}
			if opt != nil {
				*sec = (*sec)[:len(*sec)-1] // OPT records surface as m.EDNS, not as RRs
				if si != 2 {
					return errOPTOutsideAdditional
				}
				if m.EDNS != nil {
					return errDuplicateOPT
				}
				m.EDNS = opt
				m.RCode |= RCode(opt.extRCodeHi) << 4
			}
		}
		// Nil-vs-empty must be a pure function of the wire bytes so that
		// Unpack and UnpackInto DeepEqual: a zero count decodes to a nil
		// section, while a section whose records were all OPTs keeps its
		// (now empty) slice — and with it the capacity a reused Message
		// needs to stay allocation-free.
		if counts[si+1] == 0 {
			*sec = nil
		}
	}
	if counts[0] == 0 {
		m.Questions = nil
	}
	if p.remaining() != 0 {
		return ErrTrailingBytes
	}
	return nil
}

// unpackRRInto decodes one resource record into slot, reusing the
// slot's previous contents where the bytes allow. An OPT pseudo-record
// is decoded into (and returned as) an EDNS instead — oldEDNS, when
// non-nil, is its reuse candidate — and slot is left untouched beyond
// scratch writes the caller discards.
func unpackRRInto(p *parser, slot *RR, oldEDNS *EDNS) (*EDNS, error) {
	n, err := p.name(slot.Name)
	if err != nil {
		return nil, err
	}
	t, err := p.uint16()
	if err != nil {
		return nil, err
	}
	cls, err := p.uint16()
	if err != nil {
		return nil, err
	}
	ttl, err := p.uint32()
	if err != nil {
		return nil, err
	}
	rdlen, err := p.uint16()
	if err != nil {
		return nil, err
	}
	if Type(t) == TypeOPT {
		return decodeEDNSInto(p, oldEDNS, n, cls, ttl, int(rdlen))
	}
	rd, err := decodeRData(p, Type(t), int(rdlen), slot.Data)
	if err != nil {
		return nil, err
	}
	slot.Name, slot.Class, slot.TTL, slot.Data = n, Class(cls), ttl, rd
	return nil, nil
}

// String renders the message in a dig-like multi-section format.
func (m *Message) String() string {
	var sb strings.Builder
	kind := "query"
	if m.Response {
		kind = "response"
	}
	fmt.Fprintf(&sb, ";; %s %s id=%d rcode=%s", m.OpCode, kind, m.ID, m.RCode)
	for _, f := range []struct {
		on   bool
		name string
	}{
		{m.Authoritative, "aa"}, {m.Truncated, "tc"},
		{m.RecursionDesired, "rd"}, {m.RecursionAvailable, "ra"},
	} {
		if f.on {
			sb.WriteString(" +" + f.name)
		}
	}
	sb.WriteByte('\n')
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";%s\n", q)
	}
	for _, sec := range []struct {
		name string
		rrs  []RR
	}{
		{"ANSWER", m.Answers}, {"AUTHORITY", m.Authorities}, {"ADDITIONAL", m.Additionals},
	} {
		if len(sec.rrs) == 0 {
			continue
		}
		fmt.Fprintf(&sb, ";; %s\n", sec.name)
		for _, rr := range sec.rrs {
			sb.WriteString(rr.String())
			sb.WriteByte('\n')
		}
	}
	if m.EDNS != nil {
		fmt.Fprintf(&sb, ";; EDNS: version %d, udp %d, options %d\n",
			m.EDNS.Version, m.EDNS.UDPSize, len(m.EDNS.Options))
	}
	return sb.String()
}

// NewQuery builds a recursion-desired query for (name, type) with the
// given transaction ID.
func NewQuery(id uint16, name Name, t Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: t, Class: ClassINET}},
	}
}

// NewResponse builds a response skeleton for the query q, copying ID,
// opcode, question, and the RD flag.
func NewResponse(q *Message) *Message {
	r := &Message{
		Header: Header{
			ID:               q.ID,
			Response:         true,
			OpCode:           q.OpCode,
			RecursionDesired: q.RecursionDesired,
		},
	}
	r.Questions = append(r.Questions, q.Questions...)
	return r
}

// TruncateTo shrinks m to fit within size bytes when packed, dropping
// whole records from the tail sections and setting TC when anything was
// dropped. It returns the packed bytes.
func (m *Message) TruncateTo(size int) ([]byte, error) {
	return m.AppendTruncateTo(nil, size)
}

// AppendTruncateTo is TruncateTo appending the packed bytes onto buf —
// the allocation-free variant for send paths that own a reusable
// buffer. The returned slice aliases buf's backing array when it has
// the capacity.
//
//ecsalloc:zero
func (m *Message) AppendTruncateTo(buf []byte, size int) ([]byte, error) {
	if size < 12 {
		return nil, errTruncateSizeTooSmall
	}
	base := len(buf)
	for {
		data, err := m.AppendPack(buf[:base])
		if err != nil {
			return nil, err
		}
		buf = data
		if len(data)-base <= size {
			return data, nil
		}
		m.Truncated = true
		switch {
		case len(m.Additionals) > 0:
			m.Additionals = m.Additionals[:len(m.Additionals)-1]
		case len(m.Authorities) > 0:
			m.Authorities = m.Authorities[:len(m.Authorities)-1]
		case len(m.Answers) > 0:
			m.Answers = m.Answers[:len(m.Answers)-1]
		default:
			m.EDNS = nil
			data, err := m.AppendPack(buf[:base])
			if err != nil {
				return nil, err
			}
			if len(data)-base > size {
				return nil, errTruncateHeaderTooBig
			}
			return data, nil
		}
	}
}
