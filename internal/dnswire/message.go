package dnswire

import (
	"errors"
	"fmt"
	"strings"
)

// Header is the parsed DNS message header (RFC 1035 §4.1.1) minus the
// section counts, which are derived from the slices in Message.
type Header struct {
	ID                 uint16
	Response           bool
	OpCode             OpCode
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	AuthenticData      bool
	CheckingDisabled   bool
	RCode              RCode // full extended rcode; upper bits go to EDNS
}

// Question is a single query in the question section.
type Question struct {
	Name  Name
	Type  Type
	Class Class
}

// String returns "name type class".
func (q Question) String() string {
	return fmt.Sprintf("%s %s %s", q.Name, q.Class, q.Type)
}

// RR is a resource record in any of the answer, authority, or additional
// sections. OPT pseudo-records are not represented as RRs; they surface as
// Message.EDNS.
type RR struct {
	Name  Name
	Class Class
	TTL   uint32
	Data  RData
}

// Type returns the record type, taken from the typed payload.
func (rr RR) Type() Type {
	if rr.Data == nil {
		return TypeNone
	}
	return rr.Data.Type()
}

// String returns a zone-file-style one-line rendering.
func (rr RR) String() string {
	return fmt.Sprintf("%s %d %s %s %s", rr.Name, rr.TTL, rr.Class, rr.Type(), rr.Data)
}

// Message is a complete DNS message. The EDNS field, when non-nil, is
// serialized as an OPT pseudo-record in the additional section; decoded
// OPT records are lifted out of Additionals into EDNS.
type Message struct {
	Header
	Questions   []Question
	Answers     []RR
	Authorities []RR
	Additionals []RR
	EDNS        *EDNS
}

// Question returns the first question, or a zero Question if none.
func (m *Message) Question() Question {
	if len(m.Questions) == 0 {
		return Question{}
	}
	return m.Questions[0]
}

// Pack encodes m into wire format with name compression.
func (m *Message) Pack() ([]byte, error) {
	return m.pack(true)
}

// PackNoCompress encodes m without name compression; it exists so the
// compression ablation benchmark can quantify the savings.
func (m *Message) PackNoCompress() ([]byte, error) {
	return m.pack(false)
}

var errTooManySections = errors.New("dnswire: section exceeds 65535 records")

func (m *Message) pack(compress bool) ([]byte, error) {
	b := newBuilder(512)
	b.uint16(m.ID)
	flags1 := uint8(0)
	if m.Response {
		flags1 |= 0x80
	}
	flags1 |= uint8(m.OpCode&0xF) << 3
	if m.Authoritative {
		flags1 |= 0x04
	}
	if m.Truncated {
		flags1 |= 0x02
	}
	if m.RecursionDesired {
		flags1 |= 0x01
	}
	b.uint8(flags1)
	flags2 := uint8(m.RCode & 0xF)
	if m.RecursionAvailable {
		flags2 |= 0x80
	}
	if m.AuthenticData {
		flags2 |= 0x20
	}
	if m.CheckingDisabled {
		flags2 |= 0x10
	}
	b.uint8(flags2)

	nAdd := len(m.Additionals)
	if m.EDNS != nil {
		nAdd++
	}
	for _, n := range []int{len(m.Questions), len(m.Answers), len(m.Authorities), nAdd} {
		if n > 65535 {
			return nil, errTooManySections
		}
	}
	b.uint16(uint16(len(m.Questions)))
	b.uint16(uint16(len(m.Answers)))
	b.uint16(uint16(len(m.Authorities)))
	b.uint16(uint16(nAdd))

	for _, q := range m.Questions {
		b.nameOpt(q.Name, compress)
		b.uint16(uint16(q.Type))
		b.uint16(uint16(q.Class))
	}
	for _, sec := range [][]RR{m.Answers, m.Authorities, m.Additionals} {
		for _, rr := range sec {
			if err := packRR(b, rr, compress); err != nil {
				return nil, err
			}
		}
	}
	if m.EDNS != nil {
		m.EDNS.encode(b, m.RCode)
	}
	if len(b.buf) > MaxMessageSize {
		return nil, errors.New("dnswire: message exceeds 65535 bytes")
	}
	return b.buf, nil
}

func packRR(b *builder, rr RR, compress bool) error {
	if rr.Data == nil {
		return errors.New("dnswire: record with nil rdata")
	}
	b.nameOpt(rr.Name, compress)
	b.uint16(uint16(rr.Type()))
	b.uint16(uint16(rr.Class))
	b.uint32(rr.TTL)
	lenOff := len(b.buf)
	b.uint16(0) // rdlength placeholder
	rr.Data.encode(b)
	rdlen := len(b.buf) - lenOff - 2
	if rdlen > 65535 {
		return errors.New("dnswire: rdata exceeds 65535 bytes")
	}
	b.buf[lenOff] = uint8(rdlen >> 8)
	b.buf[lenOff+1] = uint8(rdlen)
	return nil
}

// PeekID reads the transaction ID from a packed message without a full
// Unpack, for transports that must answer or demux on packets that may
// not parse past the header. ok is false when the packet is shorter
// than a DNS header.
func PeekID(wire []byte) (id uint16, ok bool) {
	if len(wire) < headerLen {
		return 0, false
	}
	return uint16(wire[0])<<8 | uint16(wire[1]), true
}

// PatchID rewrites the transaction ID of a packed message in place, so
// a transport can re-send one packed query under fresh IDs without
// re-packing. It reports whether the packet was long enough to patch.
func PatchID(wire []byte, id uint16) bool {
	if len(wire) < headerLen {
		return false
	}
	wire[0] = uint8(id >> 8)
	wire[1] = uint8(id)
	return true
}

// headerLen is the fixed DNS header size (RFC 1035 §4.1.1).
const headerLen = 12

// Unpack decodes a wire-format DNS message.
func Unpack(data []byte) (*Message, error) {
	p := &parser{msg: data}
	m := &Message{}
	id, err := p.uint16()
	if err != nil {
		return nil, err
	}
	m.ID = id
	f1, err := p.uint8()
	if err != nil {
		return nil, err
	}
	f2, err := p.uint8()
	if err != nil {
		return nil, err
	}
	m.Response = f1&0x80 != 0
	m.OpCode = OpCode((f1 >> 3) & 0xF)
	m.Authoritative = f1&0x04 != 0
	m.Truncated = f1&0x02 != 0
	m.RecursionDesired = f1&0x01 != 0
	m.RecursionAvailable = f2&0x80 != 0
	m.AuthenticData = f2&0x20 != 0
	m.CheckingDisabled = f2&0x10 != 0
	m.RCode = RCode(f2 & 0xF)

	var counts [4]int
	for i := range counts {
		c, err := p.uint16()
		if err != nil {
			return nil, err
		}
		counts[i] = int(c)
	}
	// Each question needs ≥5 bytes, each RR ≥11; a cheap bound that stops
	// count-based allocation bombs before any allocation happens.
	if counts[0]*5+(counts[1]+counts[2]+counts[3])*11 > p.remaining() {
		return nil, ErrTooManyRRs
	}

	for i := 0; i < counts[0]; i++ {
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		t, err := p.uint16()
		if err != nil {
			return nil, err
		}
		c, err := p.uint16()
		if err != nil {
			return nil, err
		}
		m.Questions = append(m.Questions, Question{Name: n, Type: Type(t), Class: Class(c)})
	}
	sections := []*[]RR{&m.Answers, &m.Authorities, &m.Additionals}
	for si, sec := range sections {
		for i := 0; i < counts[si+1]; i++ {
			rr, opt, err := unpackRR(p)
			if err != nil {
				return nil, err
			}
			if opt != nil {
				if si != 2 {
					return nil, errors.New("dnswire: OPT record outside additional section")
				}
				if m.EDNS != nil {
					return nil, errors.New("dnswire: duplicate OPT record")
				}
				m.EDNS = opt
				m.RCode |= RCode(opt.extRCodeHi) << 4
				continue
			}
			*sec = append(*sec, rr)
		}
	}
	if p.remaining() != 0 {
		return nil, ErrTrailingBytes
	}
	return m, nil
}

func unpackRR(p *parser) (RR, *EDNS, error) {
	n, err := p.name()
	if err != nil {
		return RR{}, nil, err
	}
	t, err := p.uint16()
	if err != nil {
		return RR{}, nil, err
	}
	cls, err := p.uint16()
	if err != nil {
		return RR{}, nil, err
	}
	ttl, err := p.uint32()
	if err != nil {
		return RR{}, nil, err
	}
	rdlen, err := p.uint16()
	if err != nil {
		return RR{}, nil, err
	}
	if Type(t) == TypeOPT {
		opt, err := decodeEDNS(p, n, cls, ttl, int(rdlen))
		return RR{}, opt, err
	}
	rd, err := decodeRData(p, Type(t), int(rdlen))
	if err != nil {
		return RR{}, nil, err
	}
	return RR{Name: n, Class: Class(cls), TTL: ttl, Data: rd}, nil, nil
}

// String renders the message in a dig-like multi-section format.
func (m *Message) String() string {
	var sb strings.Builder
	kind := "query"
	if m.Response {
		kind = "response"
	}
	fmt.Fprintf(&sb, ";; %s %s id=%d rcode=%s", m.OpCode, kind, m.ID, m.RCode)
	for _, f := range []struct {
		on   bool
		name string
	}{
		{m.Authoritative, "aa"}, {m.Truncated, "tc"},
		{m.RecursionDesired, "rd"}, {m.RecursionAvailable, "ra"},
	} {
		if f.on {
			sb.WriteString(" +" + f.name)
		}
	}
	sb.WriteByte('\n')
	for _, q := range m.Questions {
		fmt.Fprintf(&sb, ";%s\n", q)
	}
	for _, sec := range []struct {
		name string
		rrs  []RR
	}{
		{"ANSWER", m.Answers}, {"AUTHORITY", m.Authorities}, {"ADDITIONAL", m.Additionals},
	} {
		if len(sec.rrs) == 0 {
			continue
		}
		fmt.Fprintf(&sb, ";; %s\n", sec.name)
		for _, rr := range sec.rrs {
			sb.WriteString(rr.String())
			sb.WriteByte('\n')
		}
	}
	if m.EDNS != nil {
		fmt.Fprintf(&sb, ";; EDNS: version %d, udp %d, options %d\n",
			m.EDNS.Version, m.EDNS.UDPSize, len(m.EDNS.Options))
	}
	return sb.String()
}

// NewQuery builds a recursion-desired query for (name, type) with the
// given transaction ID.
func NewQuery(id uint16, name Name, t Type) *Message {
	return &Message{
		Header:    Header{ID: id, RecursionDesired: true},
		Questions: []Question{{Name: name, Type: t, Class: ClassINET}},
	}
}

// NewResponse builds a response skeleton for the query q, copying ID,
// opcode, question, and the RD flag.
func NewResponse(q *Message) *Message {
	r := &Message{
		Header: Header{
			ID:               q.ID,
			Response:         true,
			OpCode:           q.OpCode,
			RecursionDesired: q.RecursionDesired,
		},
	}
	r.Questions = append(r.Questions, q.Questions...)
	return r
}

// TruncateTo shrinks m to fit within size bytes when packed, dropping
// whole records from the tail sections and setting TC when anything was
// dropped. It returns the packed bytes.
func (m *Message) TruncateTo(size int) ([]byte, error) {
	if size < 12 {
		return nil, errors.New("dnswire: truncation size below header size")
	}
	for {
		data, err := m.Pack()
		if err != nil {
			return nil, err
		}
		if len(data) <= size {
			return data, nil
		}
		m.Truncated = true
		switch {
		case len(m.Additionals) > 0:
			m.Additionals = m.Additionals[:len(m.Additionals)-1]
		case len(m.Authorities) > 0:
			m.Authorities = m.Authorities[:len(m.Authorities)-1]
		case len(m.Answers) > 0:
			m.Answers = m.Answers[:len(m.Answers)-1]
		default:
			m.EDNS = nil
			data, err := m.Pack()
			if err != nil {
				return nil, err
			}
			if len(data) > size {
				return nil, errors.New("dnswire: header alone exceeds truncation size")
			}
			return data, nil
		}
	}
}
