//go:build race

package dnswire

// raceEnabled reports that the race detector is active: its
// instrumentation (and sync.Pool's deliberate cache-bypassing under
// race) makes allocation counts meaningless, so the allocation gates
// skip themselves.
const raceEnabled = true
