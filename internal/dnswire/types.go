// Package dnswire implements the DNS wire format: messages, resource
// records, name compression, and the EDNS0 extension mechanism (RFC 1035,
// RFC 6891). It is the substrate every other package in this module builds
// on: the recursive resolver, the authoritative server, the scanner and the
// passive-log tooling all exchange messages encoded and decoded here.
//
// The codec is allocation-conscious but favors clarity: messages are plain
// structs, resource data is a small interface with one concrete type per
// supported RR type, and unknown types round-trip as opaque bytes.
package dnswire

import "fmt"

// Type is a DNS resource record type (RFC 1035 §3.2.2 and successors).
type Type uint16

// Resource record types supported by this module.
const (
	TypeNone  Type = 0
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypePTR   Type = 12
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
	TypeANY   Type = 255
)

var typeNames = map[Type]string{
	TypeNone:  "NONE",
	TypeA:     "A",
	TypeNS:    "NS",
	TypeCNAME: "CNAME",
	TypeSOA:   "SOA",
	TypePTR:   "PTR",
	TypeMX:    "MX",
	TypeTXT:   "TXT",
	TypeAAAA:  "AAAA",
	TypeOPT:   "OPT",
	TypeANY:   "ANY",
}

// String returns the conventional mnemonic for t, or TYPEn for unknown types
// (RFC 3597 presentation style).
func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("TYPE%d", uint16(t))
}

// Class is a DNS class. Only IN is used in practice.
type Class uint16

// DNS classes.
const (
	ClassINET Class = 1
	ClassANY  Class = 255
)

// String returns the class mnemonic.
func (c Class) String() string {
	switch c {
	case ClassINET:
		return "IN"
	case ClassANY:
		return "ANY"
	}
	return fmt.Sprintf("CLASS%d", uint16(c))
}

// OpCode is the DNS operation code from the message header.
type OpCode uint8

// Operation codes.
const (
	OpQuery  OpCode = 0
	OpStatus OpCode = 2
	OpNotify OpCode = 4
	OpUpdate OpCode = 5
)

// String returns the opcode mnemonic.
func (o OpCode) String() string {
	switch o {
	case OpQuery:
		return "QUERY"
	case OpStatus:
		return "STATUS"
	case OpNotify:
		return "NOTIFY"
	case OpUpdate:
		return "UPDATE"
	}
	return fmt.Sprintf("OPCODE%d", uint8(o))
}

// RCode is a DNS response code. Values above 15 require EDNS0 (the upper
// bits travel in the OPT record).
type RCode uint16

// Response codes.
const (
	RCodeNoError  RCode = 0
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImp   RCode = 4
	RCodeRefused  RCode = 5
	RCodeBadVers  RCode = 16
)

var rcodeNames = map[RCode]string{
	RCodeNoError:  "NOERROR",
	RCodeFormErr:  "FORMERR",
	RCodeServFail: "SERVFAIL",
	RCodeNXDomain: "NXDOMAIN",
	RCodeNotImp:   "NOTIMP",
	RCodeRefused:  "REFUSED",
	RCodeBadVers:  "BADVERS",
}

// String returns the rcode mnemonic.
func (r RCode) String() string {
	if s, ok := rcodeNames[r]; ok {
		return s
	}
	return fmt.Sprintf("RCODE%d", uint16(r))
}

// Wire-format size limits from RFC 1035.
const (
	// MaxUDPSize is the classic 512-byte UDP payload limit that applies
	// when no EDNS0 OPT record advertises a larger buffer.
	MaxUDPSize = 512
	// MaxNameLen is the maximum length of a domain name on the wire,
	// including length octets and the root label.
	MaxNameLen = 255
	// MaxLabelLen is the maximum length of a single label.
	MaxLabelLen = 63
	// MaxMessageSize is the hard ceiling for a DNS message (TCP length
	// prefix is 16 bits).
	MaxMessageSize = 65535
)
