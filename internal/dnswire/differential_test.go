package dnswire

import (
	"bytes"
	"fmt"
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
)

// The differential tests pin the contract stated on AppendPack and
// UnpackInto: the fast append/reuse paths must be observably identical
// to Pack and Unpack for every input — byte-identical wire output,
// reflect.DeepEqual structs, and the same errors — including when the
// reused Message is dirty with the remains of a previous, differently
// shaped decode.

var diffLabels = []string{
	"a", "ns1", "scan", "example", "org", "net", "cdn", "edge",
	"very-long-label-padding-padding", "xy", "t0",
}

func randDiffName(r *rand.Rand) Name {
	if r.Intn(12) == 0 {
		return Root
	}
	depth := 1 + r.Intn(4)
	var b []byte
	for i := 0; i < depth; i++ {
		b = append(b, diffLabels[r.Intn(len(diffLabels))]...)
		b = append(b, '.')
	}
	return Name(b)
}

func randDiffRData(r *rand.Rand) RData {
	switch r.Intn(9) {
	case 0:
		var a [4]byte
		r.Read(a[:])
		return &ARData{Addr: netip.AddrFrom4(a)}
	case 1:
		var a [16]byte
		r.Read(a[:])
		return &AAAARData{Addr: netip.AddrFrom16(a)}
	case 2:
		return &CNAMERData{Target: randDiffName(r)}
	case 3:
		return &NSRData{Host: randDiffName(r)}
	case 4:
		return &PTRRData{Target: randDiffName(r)}
	case 5:
		return &MXRData{Preference: uint16(r.Uint32()), Host: randDiffName(r)}
	case 6:
		n := r.Intn(3)
		var ss []string
		for i := 0; i < n; i++ {
			buf := make([]byte, r.Intn(20))
			r.Read(buf)
			ss = append(ss, string(buf))
		}
		return &TXTRData{Strings: ss}
	case 7:
		return &SOARData{
			MName: randDiffName(r), RName: randDiffName(r),
			Serial: r.Uint32(), Refresh: r.Uint32(), Retry: r.Uint32(),
			Expire: r.Uint32(), Minimum: r.Uint32(),
		}
	default:
		raw := make([]byte, r.Intn(24))
		r.Read(raw)
		if len(raw) == 0 {
			raw = nil
		}
		return &UnknownRData{T: Type(200 + r.Intn(50)), Raw: raw}
	}
}

func randDiffRR(r *rand.Rand) RR {
	return RR{
		Name:  randDiffName(r),
		Class: ClassINET,
		TTL:   uint32(r.Intn(86400)),
		Data:  randDiffRData(r),
	}
}

func randDiffMessage(r *rand.Rand) *Message {
	m := &Message{
		Header: Header{
			ID:                 uint16(r.Uint32()),
			Response:           r.Intn(2) == 0,
			OpCode:             OpCode(r.Intn(3)),
			Authoritative:      r.Intn(2) == 0,
			Truncated:          r.Intn(4) == 0,
			RecursionDesired:   r.Intn(2) == 0,
			RecursionAvailable: r.Intn(2) == 0,
			AuthenticData:      r.Intn(4) == 0,
			CheckingDisabled:   r.Intn(4) == 0,
			RCode:              RCode(r.Intn(16)),
		},
	}
	for i := r.Intn(3); i > 0; i-- {
		m.Questions = append(m.Questions, Question{
			Name: randDiffName(r), Type: TypeA, Class: ClassINET,
		})
	}
	for i := r.Intn(4); i > 0; i-- {
		m.Answers = append(m.Answers, randDiffRR(r))
	}
	for i := r.Intn(3); i > 0; i-- {
		m.Authorities = append(m.Authorities, randDiffRR(r))
	}
	for i := r.Intn(3); i > 0; i-- {
		m.Additionals = append(m.Additionals, randDiffRR(r))
	}
	if r.Intn(2) == 0 {
		e := &EDNS{
			UDPSize: uint16(512 + r.Intn(4096)),
			Version: uint8(r.Intn(2)),
			DO:      r.Intn(2) == 0,
		}
		for i := r.Intn(3); i > 0; i-- {
			data := make([]byte, r.Intn(12))
			r.Read(data)
			if len(data) == 0 {
				data = nil
			}
			e.Options = append(e.Options, Option{Code: uint16(r.Intn(16)), Data: data})
		}
		m.EDNS = e
		// Extended rcodes only survive a round trip when an OPT is
		// present to carry the upper bits.
		if r.Intn(4) == 0 {
			m.RCode = RCode(r.Intn(4096))
		}
	}
	return m
}

// diffCheckPack asserts Pack and AppendPack (bare, and behind a junk
// prefix) agree for m, returning the wire bytes when packing succeeded.
func diffCheckPack(t *testing.T, m *Message) []byte {
	t.Helper()
	want, errWant := m.Pack()

	got, errGot := m.AppendPack(nil)
	if (errWant == nil) != (errGot == nil) {
		t.Fatalf("Pack err=%v AppendPack err=%v", errWant, errGot)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("AppendPack(nil) differs from Pack:\n  pack   %x\n  append %x", want, got)
	}

	prefix := []byte("\xff\x00junk")
	got2, errGot2 := m.AppendPack(prefix)
	if (errWant == nil) != (errGot2 == nil) {
		t.Fatalf("Pack err=%v AppendPack(prefix) err=%v", errWant, errGot2)
	}
	if errWant == nil {
		if !bytes.Equal(got2[:len(prefix)], prefix) {
			t.Fatalf("AppendPack clobbered its prefix: %x", got2[:len(prefix)])
		}
		if !bytes.Equal(want, got2[len(prefix):]) {
			t.Fatalf("AppendPack behind prefix differs from Pack:\n  pack   %x\n  append %x",
				want, got2[len(prefix):])
		}
	}
	return want
}

// diffCheckUnpack asserts Unpack and UnpackInto-into-dirty agree for the
// given wire bytes. dirty is decoded-into as-is (its previous contents
// are the point) and returned for the next round.
func diffCheckUnpack(t *testing.T, wire []byte, dirty *Message) *Message {
	t.Helper()
	fresh, errFresh := Unpack(wire)
	errReuse := UnpackInto(dirty, wire)
	if (errFresh == nil) != (errReuse == nil) {
		t.Fatalf("Unpack err=%v UnpackInto err=%v (wire %x)", errFresh, errReuse, wire)
	}
	if errFresh != nil {
		if errFresh != errReuse {
			t.Fatalf("error mismatch: Unpack %v, UnpackInto %v (wire %x)", errFresh, errReuse, wire)
		}
		// Contents are undefined after a failed decode: hand the next
		// round a fresh dirty Message instead.
		return &Message{}
	}
	if !reflect.DeepEqual(fresh, dirty) {
		t.Fatalf("UnpackInto differs from Unpack:\n  fresh %#v\n  reuse %#v\n  wire %x", fresh, dirty, wire)
	}
	return dirty
}

func TestDifferentialCodec(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewSource(7))
	dirty := &Message{}
	for i := 0; i < 3000; i++ {
		m := randDiffMessage(r)
		wire := diffCheckPack(t, m)
		if wire == nil {
			continue
		}
		dirty = diffCheckUnpack(t, wire, dirty)

		// Also diff the error paths: mutated wire must fail (or succeed)
		// identically through both decoders.
		if len(wire) > 0 && i%2 == 0 {
			corrupt := append([]byte(nil), wire...)
			for n := 1 + r.Intn(3); n > 0; n-- {
				corrupt[r.Intn(len(corrupt))] ^= byte(1 << r.Intn(8))
			}
			if r.Intn(4) == 0 {
				corrupt = corrupt[:r.Intn(len(corrupt)+1)]
			}
			dirty = diffCheckUnpack(t, corrupt, dirty)
		}
	}
}

// TestDifferentialCodecRace is the bounded concurrent variant: parallel
// subtests exercise the builder/unpackState pools from several
// goroutines at once so -race can see into the pooled scratch reuse.
func TestDifferentialCodecRace(t *testing.T) {
	t.Parallel()
	const workers = 8
	for w := 0; w < workers; w++ {
		seed := int64(100 + w)
		t.Run(fmt.Sprintf("worker%d", w), func(t *testing.T) {
			t.Parallel()
			r := rand.New(rand.NewSource(seed))
			dirty := &Message{}
			for i := 0; i < 200; i++ {
				m := randDiffMessage(r)
				wire := diffCheckPack(t, m)
				if wire == nil {
					continue
				}
				dirty = diffCheckUnpack(t, wire, dirty)
			}
		})
	}
}
