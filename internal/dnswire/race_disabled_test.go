//go:build !race

package dnswire

// raceEnabled reports that the race detector is active; see the race
// build for why the allocation gates care.
const raceEnabled = false
