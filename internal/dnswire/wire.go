package dnswire

import (
	"encoding/binary"
	"errors"
	"strings"
)

// Wire decoding errors.
var (
	ErrShortMessage  = errors.New("dnswire: message truncated mid-field")
	ErrPointerLoop   = errors.New("dnswire: compression pointer loop")
	ErrBadPointer    = errors.New("dnswire: compression pointer out of range")
	ErrTrailingBytes = errors.New("dnswire: trailing bytes after message")
	ErrRDataLength   = errors.New("dnswire: rdata length mismatch")
	ErrTooManyRRs    = errors.New("dnswire: section count exceeds message size")
)

// builder accumulates an encoded message and tracks name-compression
// targets. Compression offsets must fit in 14 bits; names that would land
// beyond that horizon are simply not registered.
type builder struct {
	buf      []byte
	compress map[Name]int // suffix → offset of its first occurrence
}

func newBuilder(sizeHint int) *builder {
	return &builder{
		buf:      make([]byte, 0, sizeHint),
		compress: make(map[Name]int),
	}
}

func (b *builder) uint8(v uint8)   { b.buf = append(b.buf, v) }
func (b *builder) uint16(v uint16) { b.buf = binary.BigEndian.AppendUint16(b.buf, v) }
func (b *builder) uint32(v uint32) { b.buf = binary.BigEndian.AppendUint32(b.buf, v) }
func (b *builder) bytes(p []byte)  { b.buf = append(b.buf, p...) }

// name encodes n with compression against previously written names.
func (b *builder) name(n Name) {
	b.nameOpt(n, true)
}

// nameOpt encodes n, compressing against earlier names when compress is
// true. OPT owner names and rdata of types where compression is forbidden
// use compress=false.
func (b *builder) nameOpt(n Name, compress bool) {
	if n == Root || n == "" {
		b.uint8(0)
		return
	}
	rest := n
	for rest != Root && rest != "" {
		if compress {
			if off, ok := b.compress[rest]; ok {
				b.uint16(0xC000 | uint16(off))
				return
			}
			if off := len(b.buf); off < 0x4000 {
				b.compress[rest] = off
			}
		}
		label := string(rest)
		if i := strings.IndexByte(label, '.'); i >= 0 {
			label = label[:i]
		}
		b.uint8(uint8(len(label)))
		b.buf = append(b.buf, label...)
		rest = rest.Parent()
	}
	b.uint8(0)
}

// parser walks an encoded message.
type parser struct {
	msg []byte
	off int
}

func (p *parser) remaining() int { return len(p.msg) - p.off }

func (p *parser) uint8() (uint8, error) {
	if p.remaining() < 1 {
		return 0, ErrShortMessage
	}
	v := p.msg[p.off]
	p.off++
	return v, nil
}

func (p *parser) uint16() (uint16, error) {
	if p.remaining() < 2 {
		return 0, ErrShortMessage
	}
	v := binary.BigEndian.Uint16(p.msg[p.off:])
	p.off += 2
	return v, nil
}

func (p *parser) uint32() (uint32, error) {
	if p.remaining() < 4 {
		return 0, ErrShortMessage
	}
	v := binary.BigEndian.Uint32(p.msg[p.off:])
	p.off += 4
	return v, nil
}

func (p *parser) bytes(n int) ([]byte, error) {
	if n < 0 || p.remaining() < n {
		return nil, ErrShortMessage
	}
	v := p.msg[p.off : p.off+n]
	p.off += n
	return v, nil
}

// name decodes a possibly-compressed domain name starting at the current
// offset, advancing past it (pointers are followed without moving the
// cursor beyond the pointer itself).
func (p *parser) name() (Name, error) {
	n, next, err := decodeNameAt(p.msg, p.off)
	if err != nil {
		return "", err
	}
	p.off = next
	return n, nil
}

// decodeNameAt decodes the name at offset off in msg and returns it along
// with the offset of the first byte after the name's in-place encoding.
func decodeNameAt(msg []byte, off int) (Name, int, error) {
	var sb strings.Builder
	next := -1 // offset after the name at the original position
	ptrBudget := 127
	totalLen := 1
	for {
		if off >= len(msg) {
			return "", 0, ErrShortMessage
		}
		c := msg[off]
		switch {
		case c == 0:
			if next < 0 {
				next = off + 1
			}
			if sb.Len() == 0 {
				return Root, next, nil
			}
			return Name(foldLower(sb.String())), next, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return "", 0, ErrShortMessage
			}
			target := int(binary.BigEndian.Uint16(msg[off:]) & 0x3FFF)
			if next < 0 {
				next = off + 2
			}
			if target >= off {
				// Forward (or self) pointers are invalid and a
				// common loop vector; reject them outright.
				return "", 0, ErrBadPointer
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return "", 0, ErrPointerLoop
			}
			off = target
		case c&0xC0 != 0:
			return "", 0, errors.New("dnswire: reserved label type")
		default:
			l := int(c)
			if off+1+l > len(msg) {
				return "", 0, ErrShortMessage
			}
			totalLen += l + 1
			if totalLen > MaxNameLen {
				return "", 0, ErrNameTooLong
			}
			// Enforce the same label charset as ParseName: a '.' inside a
			// wire label would be indistinguishable from a separator in the
			// presentation form (so the name would re-encode as different
			// labels), and whitespace/control bytes are excluded to match.
			for _, b := range msg[off+1 : off+1+l] {
				if b == '.' || b <= ' ' || b == 127 {
					return "", 0, ErrBadLabelChar
				}
			}
			sb.Write(msg[off+1 : off+1+l])
			sb.WriteByte('.')
			off += 1 + l
		}
	}
}

func foldLower(s string) string {
	hasUpper := false
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}
