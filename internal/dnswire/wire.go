package dnswire

import (
	"encoding/binary"
	"errors"
	"strings"
	"sync"
)

// Wire decoding errors.
var (
	ErrShortMessage  = errors.New("dnswire: message truncated mid-field")
	ErrPointerLoop   = errors.New("dnswire: compression pointer loop")
	ErrBadPointer    = errors.New("dnswire: compression pointer out of range")
	ErrTrailingBytes = errors.New("dnswire: trailing bytes after message")
	ErrRDataLength   = errors.New("dnswire: rdata length mismatch")
	ErrTooManyRRs    = errors.New("dnswire: section count exceeds message size")

	errReservedLabel = errors.New("dnswire: reserved label type")
)

// builder accumulates an encoded message and tracks name-compression
// targets. Compression offsets are relative to base — the start of the
// message inside buf — so append-style packing behind an existing
// prefix (a TCP length frame, an earlier message) still emits valid
// pointers. Offsets must fit in 14 bits; names beyond that horizon are
// simply not registered.
//
// Builders are pooled: the steady-state encode path performs no
// allocations beyond growing the caller's buffer.
type builder struct {
	buf      []byte
	base     int          // offset of the message start within buf
	compress map[Name]int // suffix → message-relative offset of first occurrence
}

var builderPool = sync.Pool{
	New: func() any {
		return &builder{compress: make(map[Name]int, 16)}
	},
}

// acquireBuilder checks a pooled builder out over the caller's buffer.
//
//ecspool:acquire
func acquireBuilder(buf []byte) *builder {
	b := builderPool.Get().(*builder)
	b.buf = buf
	b.base = len(buf)
	return b
}

// releaseBuilder returns b to the pool. The buffer is detached first so
// the pool never pins caller memory; the compression map keeps its
// buckets (cleared) so repeated packs of similar messages stay
// allocation-free.
func releaseBuilder(b *builder) {
	b.buf = nil
	b.base = 0
	clear(b.compress)
	builderPool.Put(b)
}

func (b *builder) uint8(v uint8)   { b.buf = append(b.buf, v) }
func (b *builder) uint16(v uint16) { b.buf = binary.BigEndian.AppendUint16(b.buf, v) }
func (b *builder) uint32(v uint32) { b.buf = binary.BigEndian.AppendUint32(b.buf, v) }
func (b *builder) bytes(p []byte)  { b.buf = append(b.buf, p...) }

// msgLen is the length of the message packed so far (excluding any
// caller prefix before base).
func (b *builder) msgLen() int { return len(b.buf) - b.base }

// name encodes n with compression against previously written names.
func (b *builder) name(n Name) {
	b.nameOpt(n, true)
}

// nameOpt encodes n, compressing against earlier names when compress is
// true. OPT owner names and rdata of types where compression is forbidden
// use compress=false.
func (b *builder) nameOpt(n Name, compress bool) {
	if n == Root || n == "" {
		b.uint8(0)
		return
	}
	rest := n
	for rest != Root && rest != "" {
		if compress {
			if off, ok := b.compress[rest]; ok {
				b.uint16(0xC000 | uint16(off))
				return
			}
			if off := b.msgLen(); off < 0x4000 {
				b.compress[rest] = off
			}
		}
		label := string(rest)
		if i := strings.IndexByte(label, '.'); i >= 0 {
			label = label[:i]
		}
		b.uint8(uint8(len(label)))
		b.buf = append(b.buf, label...)
		rest = rest.Parent()
	}
	b.uint8(0)
}

// unpackState is the per-decode scratch: a reused byte buffer names are
// decoded into before they are compared against (and, when unchanged,
// replaced by) the strings already present in a reused Message. States
// are pooled so the steady-state decode path allocates nothing.
type unpackState struct {
	scratch []byte
}

var unpackPool = sync.Pool{
	New: func() any {
		return &unpackState{scratch: make([]byte, 0, MaxNameLen)}
	},
}

// parser walks an encoded message.
type parser struct {
	msg []byte
	off int
	st  *unpackState
}

func (p *parser) remaining() int { return len(p.msg) - p.off }

func (p *parser) uint8() (uint8, error) {
	if p.remaining() < 1 {
		return 0, ErrShortMessage
	}
	v := p.msg[p.off]
	p.off++
	return v, nil
}

func (p *parser) uint16() (uint16, error) {
	if p.remaining() < 2 {
		return 0, ErrShortMessage
	}
	v := binary.BigEndian.Uint16(p.msg[p.off:])
	p.off += 2
	return v, nil
}

func (p *parser) uint32() (uint32, error) {
	if p.remaining() < 4 {
		return 0, ErrShortMessage
	}
	v := binary.BigEndian.Uint32(p.msg[p.off:])
	p.off += 4
	return v, nil
}

func (p *parser) bytes(n int) ([]byte, error) {
	if n < 0 || p.remaining() < n {
		return nil, ErrShortMessage
	}
	v := p.msg[p.off : p.off+n]
	p.off += n
	return v, nil
}

// name decodes a possibly-compressed domain name starting at the current
// offset, advancing past it (pointers are followed without moving the
// cursor beyond the pointer itself). old is the reuse candidate: when the
// decoded name equals it byte-for-byte the existing string is returned
// and no allocation happens — the path that keeps repeated decodes into
// a reused Message allocation-free.
func (p *parser) name(old Name) (Name, error) {
	scratch, next, err := appendNameAt(p.st.scratch[:0], p.msg, p.off)
	p.st.scratch = scratch[:0]
	if err != nil {
		return "", err
	}
	p.off = next
	if string(old) == string(scratch) {
		return old, nil
	}
	//ecsalloc:sink name changed between decodes; steady-state reuse returns old above
	return Name(scratch), nil
}

// appendNameAt decodes the name at offset off in msg into dst in
// canonical presentation form (lower-cased, trailing dot; the root is
// "."), returning the extended buffer and the offset of the first byte
// after the name's in-place encoding.
func appendNameAt(dst []byte, msg []byte, off int) ([]byte, int, error) {
	mark := len(dst)
	next := -1 // offset after the name at the original position
	ptrBudget := 127
	totalLen := 1
	for {
		if off >= len(msg) {
			return dst, 0, ErrShortMessage
		}
		c := msg[off]
		switch {
		case c == 0:
			if next < 0 {
				next = off + 1
			}
			if len(dst) == mark {
				dst = append(dst, '.') // root
			}
			return dst, next, nil
		case c&0xC0 == 0xC0:
			if off+1 >= len(msg) {
				return dst, 0, ErrShortMessage
			}
			target := int(binary.BigEndian.Uint16(msg[off:]) & 0x3FFF)
			if next < 0 {
				next = off + 2
			}
			if target >= off {
				// Forward (or self) pointers are invalid and a
				// common loop vector; reject them outright.
				return dst, 0, ErrBadPointer
			}
			ptrBudget--
			if ptrBudget <= 0 {
				return dst, 0, ErrPointerLoop
			}
			off = target
		case c&0xC0 != 0:
			return dst, 0, errReservedLabel
		default:
			l := int(c)
			if off+1+l > len(msg) {
				return dst, 0, ErrShortMessage
			}
			totalLen += l + 1
			if totalLen > MaxNameLen {
				return dst, 0, ErrNameTooLong
			}
			// Enforce the same label charset as ParseName: a '.' inside a
			// wire label would be indistinguishable from a separator in the
			// presentation form (so the name would re-encode as different
			// labels), and whitespace/control bytes are excluded to match.
			for _, ch := range msg[off+1 : off+1+l] {
				if ch == '.' || ch <= ' ' || ch == 127 {
					return dst, 0, ErrBadLabelChar
				}
				if ch >= 'A' && ch <= 'Z' {
					ch += 'a' - 'A'
				}
				dst = append(dst, ch)
			}
			dst = append(dst, '.')
			off += 1 + l
		}
	}
}

// grow extends s by one element. When spare capacity exists the slot is
// revealed with its previous contents intact — the reuse window that
// lets UnpackInto compare newly decoded data against what a recycled
// Message already holds.
func grow[T any](s []T) ([]T, *T) {
	if len(s) < cap(s) {
		s = s[:len(s)+1]
	} else {
		var zero T
		s = append(s, zero)
	}
	return s, &s[len(s)-1]
}
