package dnswire

import (
	"net/netip"
	"strings"
	"testing"
)

// TestCompressionOffsetHorizon: names first occurring beyond the 14-bit
// pointer horizon must not be registered as compression targets, and the
// message must still round-trip.
func TestCompressionOffsetHorizon(t *testing.T) {
	m := &Message{Header: Header{ID: 1, Response: true}}
	// Fill the message past 0x4000 bytes with TXT records under unique
	// owners, then add two records sharing a late-appearing owner.
	filler := strings.Repeat("x", 250)
	for i := 0; i < 70; i++ {
		m.Answers = append(m.Answers, RR{
			Name:  Name(string(rune('a'+i%26)) + mustLabel(i) + ".fill.example."),
			Class: ClassINET, TTL: 1,
			Data: &TXTRData{Strings: []string{filler}},
		})
	}
	late := Name("late.appearing.owner.example.")
	for i := 0; i < 2; i++ {
		m.Answers = append(m.Answers, RR{
			Name: late, Class: ClassINET, TTL: 1,
			Data: &ARData{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})},
		})
	}
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) <= 0x4000 {
		t.Fatalf("message only %d bytes; test needs to cross the pointer horizon", len(data))
	}
	got, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Answers) != len(m.Answers) {
		t.Fatalf("answers = %d, want %d", len(got.Answers), len(m.Answers))
	}
	for _, rr := range got.Answers[len(got.Answers)-2:] {
		if rr.Name != late {
			t.Fatalf("late owner decoded as %q", rr.Name)
		}
	}
}

func mustLabel(i int) string {
	return string([]byte{'l', byte('0' + i/10%10), byte('0' + i%10)})
}

func TestEmptyTXTString(t *testing.T) {
	m := &Message{Header: Header{ID: 1, Response: true}}
	m.Answers = []RR{{
		Name: "t.example.", Class: ClassINET, TTL: 1,
		Data: &TXTRData{Strings: []string{""}},
	}}
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	txt := got.Answers[0].Data.(*TXTRData)
	if len(txt.Strings) != 1 || txt.Strings[0] != "" {
		t.Fatalf("TXT = %+v", txt)
	}
}

func TestOversizeTXTStringTruncated(t *testing.T) {
	long := strings.Repeat("y", 300)
	m := &Message{Header: Header{ID: 1, Response: true}}
	m.Answers = []RR{{
		Name: "t.example.", Class: ClassINET, TTL: 1,
		Data: &TXTRData{Strings: []string{long}},
	}}
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	s := got.Answers[0].Data.(*TXTRData).Strings[0]
	if len(s) != 255 {
		t.Fatalf("character-string length = %d, want clamped 255", len(s))
	}
}

func TestRootOwnerRecord(t *testing.T) {
	m := &Message{Header: Header{ID: 1, Response: true}}
	m.Answers = []RR{{
		Name: Root, Class: ClassINET, TTL: 518400,
		Data: &NSRData{Host: "a.root-servers.example."},
	}}
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Answers[0].Name != Root {
		t.Fatalf("root owner decoded as %q", got.Answers[0].Name)
	}
}

func TestEDNSOptionBoundaryLengths(t *testing.T) {
	// An option whose declared length exceeds the rdata must be
	// rejected, not read out of bounds.
	m := NewQuery(1, "x.example.", TypeA)
	m.EDNS = NewEDNS()
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	// Locate the OPT rdlen (last 2 bytes are rdlen=0 of the OPT); craft
	// a bogus option by appending one manually.
	data[len(data)-1] = 4            // rdlen = 4
	data = append(data, 0, 8, 0, 99) // option code 8, length 99, no data
	if _, err := Unpack(data); err == nil {
		t.Fatal("out-of-bounds option length accepted")
	}
}

func TestQuestionOnlyTruncationFloor(t *testing.T) {
	m := NewQuery(1, "very.long.name.that.will.not.fit.example.", TypeA)
	if _, err := m.TruncateTo(12); err != nil {
		// Header alone fits in 12 bytes only if the question is
		// dropped, which TruncateTo does not do — an error is the
		// correct outcome, not a panic or an oversized packet.
		return
	}
	// If it succeeded, the packed size must respect the bound.
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) > 12 {
		t.Fatalf("TruncateTo(12) returned but message is %d bytes", len(data))
	}
}

func TestUnpackClassANYAndUnknownTypes(t *testing.T) {
	m := &Message{Header: Header{ID: 9}}
	m.Questions = []Question{{Name: "x.example.", Type: TypeANY, Class: ClassANY}}
	data, err := m.Pack()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unpack(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Question().Type != TypeANY || got.Question().Class != ClassANY {
		t.Fatalf("question = %v", got.Question())
	}
}
