package dnswire

import (
	"bytes"
	"net/netip"
	"reflect"
	"testing"
)

// FuzzUnpack exercises the decoder with mutated wire data: it must never
// panic, and anything it accepts must re-encode and re-decode to the
// same question section (the invariant resolvers rely on).
func FuzzUnpack(f *testing.F) {
	q := NewQuery(7, "www.example.com.", TypeA)
	q.EDNS = NewEDNS()
	q.EDNS.SetOption(Option{Code: OptionCodeECS, Data: []byte{0, 1, 24, 0, 192, 0, 2}})
	seed1, err := q.Pack()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed1)

	r := NewResponse(q)
	r.Answers = []RR{
		{Name: "www.example.com.", Class: ClassINET, TTL: 20,
			Data: &ARData{Addr: netip.MustParseAddr("192.0.2.1")}},
		{Name: "www.example.com.", Class: ClassINET, TTL: 20,
			Data: &CNAMERData{Target: "edge.example.net."}},
		{Name: "www.example.com.", Class: ClassINET, TTL: 20,
			Data: &TXTRData{Strings: []string{"a", "b"}}},
	}
	r.Authorities = []RR{
		{Name: "example.com.", Class: ClassINET, TTL: 60, Data: &SOARData{
			MName: "ns1.example.com.", RName: "hostmaster.example.com.",
			Serial: 1, Refresh: 2, Retry: 3, Expire: 4, Minimum: 5,
		}},
	}
	seed2, err := r.Pack()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed2)
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0x80, 0, 0, 0, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unpack(data)
		if err != nil {
			return
		}
		repacked, err := m.Pack()
		if err != nil {
			// Some decodable messages exceed re-encoding limits (e.g.
			// compression-expanded rdata); that is acceptable, panics
			// are not.
			return
		}
		m2, err := Unpack(repacked)
		if err != nil {
			t.Fatalf("repacked message undecodable: %v\noriginal: %x\nrepacked: %x", err, data, repacked)
		}
		if len(m.Questions) != len(m2.Questions) {
			t.Fatalf("question count changed: %d → %d", len(m.Questions), len(m2.Questions))
		}
		for i := range m.Questions {
			if m.Questions[i] != m2.Questions[i] {
				t.Fatalf("question %d changed: %v → %v", i, m.Questions[i], m2.Questions[i])
			}
		}
		if m.ID != m2.ID || m.RCode != m2.RCode || m.Response != m2.Response {
			t.Fatal("header fields changed across repack")
		}
	})
}

// FuzzUnpackReuse fuzzes the Message-reuse decode path against fresh
// Unpack as the oracle: after dirtying a Message with one arbitrary
// decode (successful or not), UnpackInto on a second input must return
// the same error as Unpack and — on success — a struct DeepEqual to the
// fresh decode. This is the check that catches stale fields leaking out
// of reused Messages.
func FuzzUnpackReuse(f *testing.F) {
	q := NewQuery(7, "www.example.com.", TypeA)
	q.EDNS = NewEDNS()
	q.EDNS.SetOption(Option{Code: OptionCodeECS, Data: []byte{0, 1, 24, 0, 192, 0, 2}})
	seed1, err := q.Pack()
	if err != nil {
		f.Fatal(err)
	}
	r := NewResponse(q)
	r.Answers = []RR{
		{Name: "www.example.com.", Class: ClassINET, TTL: 20,
			Data: &ARData{Addr: netip.MustParseAddr("192.0.2.1")}},
		{Name: "www.example.com.", Class: ClassINET, TTL: 20,
			Data: &TXTRData{Strings: []string{"alpha", "beta"}}},
	}
	r.EDNS = NewEDNS()
	seed2, err := r.Pack()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed1, seed2)
	f.Add(seed2, seed1)
	f.Add(seed1, seed1)
	f.Add([]byte{}, seed2)
	f.Add(seed2, []byte{0, 1, 0x80, 0, 0, 0, 0xFF, 0xFF, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, dirt, data []byte) {
		m := &Message{}
		// First decode only exists to dirty m; failure is fine — a reused
		// Message carrying the debris of a failed decode must still be a
		// valid reuse target.
		_ = UnpackInto(m, dirt)

		fresh, errFresh := Unpack(data)
		errReuse := UnpackInto(m, data)
		if (errFresh == nil) != (errReuse == nil) {
			t.Fatalf("Unpack err=%v, UnpackInto err=%v\ndirt: %x\ndata: %x", errFresh, errReuse, dirt, data)
		}
		if errFresh != nil {
			if errFresh != errReuse {
				t.Fatalf("error mismatch: Unpack %v, UnpackInto %v\ndirt: %x\ndata: %x", errFresh, errReuse, dirt, data)
			}
			return
		}
		if !reflect.DeepEqual(fresh, m) {
			t.Fatalf("reused decode differs from fresh:\nfresh: %#v\nreuse: %#v\ndirt: %x\ndata: %x",
				fresh, m, dirt, data)
		}
	})
}

// FuzzNameParse checks ParseName never panics and that accepted names
// survive a wire round trip.
func FuzzNameParse(f *testing.F) {
	for _, s := range []string{"example.com", ".", "a.b.c.d.e", "p-1-2-3-4.scan.org", "UPPER.Case."} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := ParseName(s)
		if err != nil {
			return
		}
		q := NewQuery(1, n, TypeA)
		data, err := q.Pack()
		if err != nil {
			t.Fatalf("accepted name %q failed to pack: %v", n, err)
		}
		got, err := Unpack(data)
		if err != nil {
			t.Fatalf("accepted name %q failed to unpack: %v", n, err)
		}
		if got.Question().Name != n {
			// Names with bytes that collide with the presentation
			// separator cannot round-trip textually; they must still
			// decode to *something* without error.
			if !bytes.ContainsAny([]byte(n), ".") {
				t.Fatalf("name changed: %q → %q", n, got.Question().Name)
			}
		}
	})
}
