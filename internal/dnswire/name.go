package dnswire

import (
	"errors"
	"strings"
)

// Name is a fully-qualified domain name in canonical presentation form:
// lower-case, dot-separated labels with a trailing dot ("example.com.").
// The root zone is the single dot ".". Construct Names with ParseName (or
// MustParseName in tests and static data); the zero value "" is invalid.
type Name string

// Root is the DNS root name.
const Root Name = "."

// Name parsing and validation errors.
var (
	ErrEmptyName    = errors.New("dnswire: empty domain name")
	ErrNameTooLong  = errors.New("dnswire: domain name exceeds 255 octets")
	ErrLabelTooLong = errors.New("dnswire: label exceeds 63 octets")
	ErrEmptyLabel   = errors.New("dnswire: empty label in domain name")
	ErrBadLabelChar = errors.New("dnswire: invalid character in label")
)

// ParseName validates and canonicalizes s into a Name. It accepts names
// with or without a trailing dot, folds ASCII upper case to lower case,
// and enforces RFC 1035 length limits. Hostname character restrictions are
// deliberately not enforced beyond excluding dots, whitespace and control
// characters inside labels: DNS itself is 8-bit clean and the scanner
// encodes IPv4 addresses into labels.
func ParseName(s string) (Name, error) {
	if s == "" {
		return "", ErrEmptyName
	}
	if s == "." {
		return Root, nil
	}
	s = strings.TrimSuffix(s, ".")
	labels := strings.Split(s, ".")
	total := 1 // root label length octet
	var b strings.Builder
	b.Grow(len(s) + 1)
	for _, l := range labels {
		if l == "" {
			return "", ErrEmptyLabel
		}
		if len(l) > MaxLabelLen {
			return "", ErrLabelTooLong
		}
		total += len(l) + 1
		for i := 0; i < len(l); i++ {
			c := l[i]
			if c <= ' ' || c == 127 {
				return "", ErrBadLabelChar
			}
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			b.WriteByte(c)
		}
		b.WriteByte('.')
	}
	if total > MaxNameLen {
		return "", ErrNameTooLong
	}
	return Name(b.String()), nil
}

// MustParseName is ParseName for static data; it panics on invalid input.
func MustParseName(s string) Name {
	n, err := ParseName(s)
	if err != nil {
		panic("dnswire: MustParseName(" + s + "): " + err.Error())
	}
	return n
}

// String returns the presentation form of the name.
func (n Name) String() string { return string(n) }

// IsRoot reports whether n is the DNS root.
func (n Name) IsRoot() bool { return n == Root }

// Labels returns the labels of n from most- to least-specific, excluding
// the root. Labels(".") is empty.
func (n Name) Labels() []string {
	if n == Root || n == "" {
		return nil
	}
	return strings.Split(strings.TrimSuffix(string(n), "."), ".")
}

// CountLabels returns the number of non-root labels in n.
func (n Name) CountLabels() int {
	if n == Root || n == "" {
		return 0
	}
	return strings.Count(string(n), ".")
}

// Parent returns the name with the most-specific label removed.
// Parent of the root is the root.
func (n Name) Parent() Name {
	if n == Root || n == "" {
		return Root
	}
	i := strings.IndexByte(string(n), '.')
	if i < 0 || i == len(n)-1 {
		return Root
	}
	return n[i+1:]
}

// IsSubdomainOf reports whether n is equal to or below zone. Every name is
// a subdomain of the root.
func (n Name) IsSubdomainOf(zone Name) bool {
	if zone == Root {
		return true
	}
	if n == zone {
		return true
	}
	return strings.HasSuffix(string(n), "."+string(zone))
}

// SLD returns the second-level domain of n ("www.cnn.com." → "cnn.com."),
// following the paper's definition of the two most senior labels. Names
// with fewer than two labels return themselves.
func (n Name) SLD() Name {
	labels := n.Labels()
	if len(labels) < 2 {
		return n
	}
	return Name(labels[len(labels)-2] + "." + labels[len(labels)-1] + ".")
}

// Prepend returns label + "." + n, validating the result.
func (n Name) Prepend(label string) (Name, error) {
	if n == Root {
		return ParseName(label)
	}
	return ParseName(label + "." + string(n))
}

// wireLen returns the uncompressed encoded length of n.
func (n Name) wireLen() int {
	if n == Root {
		return 1
	}
	return len(n) + 1
}
