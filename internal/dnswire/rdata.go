package dnswire

import (
	"fmt"
	"net/netip"
	"strings"
)

// RData is the typed payload of a resource record. Concrete types exist
// for every record type this module serves; anything else round-trips as
// UnknownRData.
type RData interface {
	// Type returns the RR type this payload belongs to.
	Type() Type
	// encode appends the rdata (without the length prefix) to b.
	encode(b *builder)
	// String returns the presentation form of the rdata.
	String() string
}

// ARData is an IPv4 address record payload.
type ARData struct{ Addr netip.Addr }

// Type implements RData.
func (ARData) Type() Type { return TypeA }

func (r ARData) encode(b *builder) {
	a := r.Addr.As4()
	b.bytes(a[:])
}

func (r ARData) String() string { return r.Addr.String() }

// AAAARData is an IPv6 address record payload.
type AAAARData struct{ Addr netip.Addr }

// Type implements RData.
func (AAAARData) Type() Type { return TypeAAAA }

func (r AAAARData) encode(b *builder) {
	a := r.Addr.As16()
	b.bytes(a[:])
}

func (r AAAARData) String() string { return r.Addr.String() }

// CNAMERData is an alias record payload.
type CNAMERData struct{ Target Name }

// Type implements RData.
func (CNAMERData) Type() Type { return TypeCNAME }

func (r CNAMERData) encode(b *builder) { b.name(r.Target) }
func (r CNAMERData) String() string    { return string(r.Target) }

// NSRData is a delegation record payload.
type NSRData struct{ Host Name }

// Type implements RData.
func (NSRData) Type() Type { return TypeNS }

func (r NSRData) encode(b *builder) { b.name(r.Host) }
func (r NSRData) String() string    { return string(r.Host) }

// PTRRData is a pointer record payload.
type PTRRData struct{ Target Name }

// Type implements RData.
func (PTRRData) Type() Type { return TypePTR }

func (r PTRRData) encode(b *builder) { b.name(r.Target) }
func (r PTRRData) String() string    { return string(r.Target) }

// MXRData is a mail-exchange record payload.
type MXRData struct {
	Preference uint16
	Host       Name
}

// Type implements RData.
func (MXRData) Type() Type { return TypeMX }

func (r MXRData) encode(b *builder) {
	b.uint16(r.Preference)
	b.name(r.Host)
}

func (r MXRData) String() string { return fmt.Sprintf("%d %s", r.Preference, r.Host) }

// TXTRData is a text record payload: one or more character-strings.
type TXTRData struct{ Strings []string }

// Type implements RData.
func (TXTRData) Type() Type { return TypeTXT }

func (r TXTRData) encode(b *builder) {
	for _, s := range r.Strings {
		if len(s) > 255 {
			s = s[:255]
		}
		b.uint8(uint8(len(s)))
		b.bytes([]byte(s))
	}
}

func (r TXTRData) String() string {
	parts := make([]string, len(r.Strings))
	for i, s := range r.Strings {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

// SOARData is a start-of-authority record payload.
type SOARData struct {
	MName   Name
	RName   Name
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Type implements RData.
func (SOARData) Type() Type { return TypeSOA }

func (r SOARData) encode(b *builder) {
	b.name(r.MName)
	b.name(r.RName)
	b.uint32(r.Serial)
	b.uint32(r.Refresh)
	b.uint32(r.Retry)
	b.uint32(r.Expire)
	b.uint32(r.Minimum)
}

func (r SOARData) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		r.MName, r.RName, r.Serial, r.Refresh, r.Retry, r.Expire, r.Minimum)
}

// UnknownRData carries the raw rdata of a record type the codec does not
// model. It round-trips byte-for-byte (RFC 3597 behavior).
type UnknownRData struct {
	T   Type
	Raw []byte
}

// Type implements RData.
func (r UnknownRData) Type() Type { return r.T }

func (r UnknownRData) encode(b *builder) { b.bytes(r.Raw) }

func (r UnknownRData) String() string {
	return fmt.Sprintf("\\# %d %x", len(r.Raw), r.Raw)
}

// decodeRData decodes rdlen bytes of rdata of the given type. The parser is
// positioned at the start of the rdata; name-bearing types may follow
// compression pointers anywhere earlier in the message.
func decodeRData(p *parser, t Type, rdlen int) (RData, error) {
	end := p.off + rdlen
	if end > len(p.msg) {
		return nil, ErrShortMessage
	}
	var rd RData
	switch t {
	case TypeA:
		raw, err := p.bytes(4)
		if err != nil {
			return nil, err
		}
		rd = ARData{Addr: netip.AddrFrom4([4]byte(raw))}
	case TypeAAAA:
		raw, err := p.bytes(16)
		if err != nil {
			return nil, err
		}
		rd = AAAARData{Addr: netip.AddrFrom16([16]byte(raw))}
	case TypeCNAME:
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		rd = CNAMERData{Target: n}
	case TypeNS:
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		rd = NSRData{Host: n}
	case TypePTR:
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		rd = PTRRData{Target: n}
	case TypeMX:
		pref, err := p.uint16()
		if err != nil {
			return nil, err
		}
		n, err := p.name()
		if err != nil {
			return nil, err
		}
		rd = MXRData{Preference: pref, Host: n}
	case TypeTXT:
		var ss []string
		for p.off < end {
			l, err := p.uint8()
			if err != nil {
				return nil, err
			}
			raw, err := p.bytes(int(l))
			if err != nil {
				return nil, err
			}
			if p.off > end {
				return nil, ErrRDataLength
			}
			ss = append(ss, string(raw))
		}
		rd = TXTRData{Strings: ss}
	case TypeSOA:
		mname, err := p.name()
		if err != nil {
			return nil, err
		}
		rname, err := p.name()
		if err != nil {
			return nil, err
		}
		var vals [5]uint32
		for i := range vals {
			v, err := p.uint32()
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		rd = SOARData{
			MName: mname, RName: rname,
			Serial: vals[0], Refresh: vals[1], Retry: vals[2],
			Expire: vals[3], Minimum: vals[4],
		}
	default:
		raw, err := p.bytes(rdlen)
		if err != nil {
			return nil, err
		}
		cp := make([]byte, rdlen)
		copy(cp, raw)
		rd = UnknownRData{T: t, Raw: cp}
	}
	if p.off != end {
		return nil, ErrRDataLength
	}
	return rd, nil
}
