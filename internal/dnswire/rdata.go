package dnswire

import (
	"fmt"
	"net/netip"
	"strings"
)

// RData is the typed payload of a resource record. Concrete types exist
// for every record type this module serves; anything else round-trips as
// UnknownRData.
type RData interface {
	// Type returns the RR type this payload belongs to.
	Type() Type
	// encode appends the rdata (without the length prefix) to b.
	encode(b *builder)
	// String returns the presentation form of the rdata.
	String() string
}

// ARData is an IPv4 address record payload.
type ARData struct{ Addr netip.Addr }

// Type implements RData.
func (ARData) Type() Type { return TypeA }

func (r ARData) encode(b *builder) {
	a := r.Addr.As4()
	b.bytes(a[:])
}

func (r ARData) String() string { return r.Addr.String() }

// AAAARData is an IPv6 address record payload.
type AAAARData struct{ Addr netip.Addr }

// Type implements RData.
func (AAAARData) Type() Type { return TypeAAAA }

func (r AAAARData) encode(b *builder) {
	a := r.Addr.As16()
	b.bytes(a[:])
}

func (r AAAARData) String() string { return r.Addr.String() }

// CNAMERData is an alias record payload.
type CNAMERData struct{ Target Name }

// Type implements RData.
func (CNAMERData) Type() Type { return TypeCNAME }

func (r CNAMERData) encode(b *builder) { b.name(r.Target) }
func (r CNAMERData) String() string    { return string(r.Target) }

// NSRData is a delegation record payload.
type NSRData struct{ Host Name }

// Type implements RData.
func (NSRData) Type() Type { return TypeNS }

func (r NSRData) encode(b *builder) { b.name(r.Host) }
func (r NSRData) String() string    { return string(r.Host) }

// PTRRData is a pointer record payload.
type PTRRData struct{ Target Name }

// Type implements RData.
func (PTRRData) Type() Type { return TypePTR }

func (r PTRRData) encode(b *builder) { b.name(r.Target) }
func (r PTRRData) String() string    { return string(r.Target) }

// MXRData is a mail-exchange record payload.
type MXRData struct {
	Preference uint16
	Host       Name
}

// Type implements RData.
func (MXRData) Type() Type { return TypeMX }

func (r MXRData) encode(b *builder) {
	b.uint16(r.Preference)
	b.name(r.Host)
}

func (r MXRData) String() string { return fmt.Sprintf("%d %s", r.Preference, r.Host) }

// TXTRData is a text record payload: one or more character-strings.
type TXTRData struct{ Strings []string }

// Type implements RData.
func (TXTRData) Type() Type { return TypeTXT }

func (r TXTRData) encode(b *builder) {
	for _, s := range r.Strings {
		if len(s) > 255 {
			s = s[:255]
		}
		b.uint8(uint8(len(s)))
		b.bytes([]byte(s))
	}
}

func (r TXTRData) String() string {
	parts := make([]string, len(r.Strings))
	for i, s := range r.Strings {
		parts[i] = fmt.Sprintf("%q", s)
	}
	return strings.Join(parts, " ")
}

// SOARData is a start-of-authority record payload.
type SOARData struct {
	MName   Name
	RName   Name
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// Type implements RData.
func (SOARData) Type() Type { return TypeSOA }

func (r SOARData) encode(b *builder) {
	b.name(r.MName)
	b.name(r.RName)
	b.uint32(r.Serial)
	b.uint32(r.Refresh)
	b.uint32(r.Retry)
	b.uint32(r.Expire)
	b.uint32(r.Minimum)
}

func (r SOARData) String() string {
	return fmt.Sprintf("%s %s %d %d %d %d %d",
		r.MName, r.RName, r.Serial, r.Refresh, r.Retry, r.Expire, r.Minimum)
}

// UnknownRData carries the raw rdata of a record type the codec does not
// model. It round-trips byte-for-byte (RFC 3597 behavior).
type UnknownRData struct {
	T   Type
	Raw []byte
}

// Type implements RData.
func (r UnknownRData) Type() Type { return r.T }

func (r UnknownRData) encode(b *builder) { b.bytes(r.Raw) }

func (r UnknownRData) String() string {
	return fmt.Sprintf("\\# %d %x", len(r.Raw), r.Raw)
}

// decodeRData decodes rdlen bytes of rdata of the given type. The parser is
// positioned at the start of the rdata; name-bearing types may follow
// compression pointers anywhere earlier in the message.
//
// old is the reuse candidate from the record slot being overwritten:
// when it holds a payload of the same concrete type, that payload is
// mutated in place (strings and byte slices reusing their existing
// allocations where the bytes allow) and returned, keeping repeated
// decodes into a reused Message allocation-free. Decoded payloads are
// always pointers (*ARData, *TXTRData, ...) for exactly this reason — a
// value stored in an RData interface could never be reused without a
// fresh box allocation.
func decodeRData(p *parser, t Type, rdlen int, old RData) (RData, error) {
	end := p.off + rdlen
	if end > len(p.msg) {
		return nil, ErrShortMessage
	}
	var rd RData
	switch t {
	case TypeA:
		raw, err := p.bytes(4)
		if err != nil {
			return nil, err
		}
		r, ok := old.(*ARData)
		if !ok {
			//ecsalloc:sink slot type changed; steady-state decode reuses the old rdata
			r = &ARData{}
		}
		r.Addr = netip.AddrFrom4([4]byte(raw))
		rd = r
	case TypeAAAA:
		raw, err := p.bytes(16)
		if err != nil {
			return nil, err
		}
		r, ok := old.(*AAAARData)
		if !ok {
			//ecsalloc:sink slot type changed; steady-state decode reuses the old rdata
			r = &AAAARData{}
		}
		r.Addr = netip.AddrFrom16([16]byte(raw))
		rd = r
	case TypeCNAME:
		r, ok := old.(*CNAMERData)
		if !ok {
			//ecsalloc:sink slot type changed; steady-state decode reuses the old rdata
			r = &CNAMERData{}
		}
		n, err := p.name(r.Target)
		if err != nil {
			return nil, err
		}
		r.Target = n
		rd = r
	case TypeNS:
		r, ok := old.(*NSRData)
		if !ok {
			//ecsalloc:sink slot type changed; steady-state decode reuses the old rdata
			r = &NSRData{}
		}
		n, err := p.name(r.Host)
		if err != nil {
			return nil, err
		}
		r.Host = n
		rd = r
	case TypePTR:
		r, ok := old.(*PTRRData)
		if !ok {
			//ecsalloc:sink slot type changed; steady-state decode reuses the old rdata
			r = &PTRRData{}
		}
		n, err := p.name(r.Target)
		if err != nil {
			return nil, err
		}
		r.Target = n
		rd = r
	case TypeMX:
		r, ok := old.(*MXRData)
		if !ok {
			//ecsalloc:sink slot type changed; steady-state decode reuses the old rdata
			r = &MXRData{}
		}
		pref, err := p.uint16()
		if err != nil {
			return nil, err
		}
		n, err := p.name(r.Host)
		if err != nil {
			return nil, err
		}
		r.Preference, r.Host = pref, n
		rd = r
	case TypeTXT:
		r, ok := old.(*TXTRData)
		if !ok {
			//ecsalloc:sink slot type changed; steady-state decode reuses the old rdata
			r = &TXTRData{}
		}
		ss := r.Strings[:0]
		for p.off < end {
			l, err := p.uint8()
			if err != nil {
				return nil, err
			}
			raw, err := p.bytes(int(l))
			if err != nil {
				return nil, err
			}
			if p.off > end {
				return nil, ErrRDataLength
			}
			var slot *string
			ss, slot = grow(ss)
			if *slot != string(raw) {
				//ecsalloc:sink TXT string changed between decodes; equal strings reuse the slot
				*slot = string(raw)
			}
		}
		if len(ss) == 0 {
			ss = nil
		}
		r.Strings = ss
		rd = r
	case TypeSOA:
		r, ok := old.(*SOARData)
		if !ok {
			//ecsalloc:sink slot type changed; steady-state decode reuses the old rdata
			r = &SOARData{}
		}
		mname, err := p.name(r.MName)
		if err != nil {
			return nil, err
		}
		rname, err := p.name(r.RName)
		if err != nil {
			return nil, err
		}
		var vals [5]uint32
		for i := range vals {
			v, err := p.uint32()
			if err != nil {
				return nil, err
			}
			vals[i] = v
		}
		r.MName, r.RName = mname, rname
		r.Serial, r.Refresh, r.Retry = vals[0], vals[1], vals[2]
		r.Expire, r.Minimum = vals[3], vals[4]
		rd = r
	default:
		raw, err := p.bytes(rdlen)
		if err != nil {
			return nil, err
		}
		r, ok := old.(*UnknownRData)
		if !ok {
			//ecsalloc:sink slot type changed; steady-state decode reuses the old rdata
			r = &UnknownRData{}
		}
		r.T = t
		r.Raw = append(r.Raw[:0], raw...)
		if len(r.Raw) == 0 {
			r.Raw = nil
		}
		rd = r
	}
	if p.off != end {
		return nil, ErrRDataLength
	}
	return rd, nil
}
