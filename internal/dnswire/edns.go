package dnswire

import "errors"

// EDNS0 option codes this module knows about. The ECS payload itself is
// encoded and decoded by package ecsopt; at this layer it is opaque bytes.
const (
	OptionCodeECS    uint16 = 8
	OptionCodeCookie uint16 = 10
)

// Option is a single EDNS0 option TLV.
type Option struct {
	Code uint16
	Data []byte
}

// EDNS is the decoded form of the OPT pseudo-record (RFC 6891).
type EDNS struct {
	UDPSize uint16 // requestor's advertised UDP payload size
	Version uint8
	DO      bool // DNSSEC OK
	Options []Option

	extRCodeHi uint8 // upper 8 bits of the extended rcode, set on decode
}

// NewEDNS returns an OPT skeleton with the conventional 4096-byte buffer.
func NewEDNS() *EDNS { return &EDNS{UDPSize: 4096} }

// Option returns the first option with the given code and whether it was
// present.
func (e *EDNS) Option(code uint16) (Option, bool) {
	for _, o := range e.Options {
		if o.Code == code {
			return o, true
		}
	}
	return Option{}, false
}

// SetOption replaces any existing option with the same code, or appends.
func (e *EDNS) SetOption(o Option) {
	for i := range e.Options {
		if e.Options[i].Code == o.Code {
			e.Options[i] = o
			return
		}
	}
	e.Options = append(e.Options, o)
}

// RemoveOption deletes every option with the given code and reports
// whether any was removed.
func (e *EDNS) RemoveOption(code uint16) bool {
	out := e.Options[:0]
	removed := false
	for _, o := range e.Options {
		if o.Code == code {
			removed = true
			continue
		}
		out = append(out, o)
	}
	e.Options = out
	return removed
}

// encode appends the OPT pseudo-record. The message rcode supplies the
// extended rcode bits that live in the OPT TTL field.
func (e *EDNS) encode(b *builder, rcode RCode) {
	b.uint8(0) // root owner name, never compressed
	b.uint16(uint16(TypeOPT))
	b.uint16(e.UDPSize)
	ttl := uint32(rcode>>4)<<24 | uint32(e.Version)<<16
	if e.DO {
		ttl |= 1 << 15
	}
	b.uint32(ttl)
	lenOff := len(b.buf)
	b.uint16(0)
	for _, o := range e.Options {
		b.uint16(o.Code)
		b.uint16(uint16(len(o.Data)))
		b.bytes(o.Data)
	}
	rdlen := len(b.buf) - lenOff - 2
	b.buf[lenOff] = uint8(rdlen >> 8)
	b.buf[lenOff+1] = uint8(rdlen)
}

// decodeEDNSInto decodes an OPT pseudo-record. old, when non-nil, is the
// reuse candidate: its struct, Options slice, and per-option Data buffers
// are overwritten in place so repeated decodes into a reused Message stay
// allocation-free.
var errOPTNonRootOwner = errors.New("dnswire: OPT record with non-root owner")

func decodeEDNSInto(p *parser, old *EDNS, owner Name, cls uint16, ttl uint32, rdlen int) (*EDNS, error) {
	if owner != Root {
		return nil, errOPTNonRootOwner
	}
	e := old
	if e == nil {
		//ecsalloc:sink first decode into this Message; the slot is reused afterwards
		e = &EDNS{}
	}
	e.UDPSize = cls
	e.extRCodeHi = uint8(ttl >> 24)
	e.Version = uint8(ttl >> 16)
	e.DO = ttl&(1<<15) != 0
	end := p.off + rdlen
	if end > len(p.msg) {
		return nil, ErrShortMessage
	}
	opts := e.Options[:0]
	for p.off < end {
		code, err := p.uint16()
		if err != nil {
			return nil, err
		}
		olen, err := p.uint16()
		if err != nil {
			return nil, err
		}
		raw, err := p.bytes(int(olen))
		if err != nil {
			return nil, err
		}
		if p.off > end {
			return nil, ErrRDataLength
		}
		var slot *Option
		opts, slot = grow(opts)
		slot.Code = code
		slot.Data = append(slot.Data[:0], raw...)
		if len(slot.Data) == 0 {
			slot.Data = nil
		}
	}
	if p.off != end {
		return nil, ErrRDataLength
	}
	if len(opts) == 0 {
		opts = nil
	}
	e.Options = opts
	return e, nil
}
