package geo

// City is a point of presence in the synthetic Internet: end-users,
// resolvers and CDN edges are all placed in cities.
type City struct {
	Name    string
	Country string  // ISO-ish short country name
	Region  string  // continent-scale region
	Lat     float64 // degrees north
	Lon     float64 // degrees east
	Weight  float64 // relative share of clients/infrastructure
}

// Cities is the built-in world catalog. Coordinates are approximate city
// centers; weights roughly track metro population and Internet density.
// The set intentionally includes every location the paper's experiments
// name: Cleveland (the authors' vantage), Chicago, Mountain View, Zurich,
// Johannesburg (Table 2), Santiago and Rome (the §8.2 12000 km example),
// Toronto (CDN-2 fallback), and Beijing/Shanghai/Guangzhou (§8.2 China
// structure).
var Cities = []City{
	// North America
	{"New York", "US", "NA", 40.71, -74.01, 19.0},
	{"Los Angeles", "US", "NA", 34.05, -118.24, 13.0},
	{"Chicago", "US", "NA", 41.88, -87.63, 9.5},
	{"Dallas", "US", "NA", 32.78, -96.80, 7.0},
	{"Washington", "US", "NA", 38.91, -77.04, 6.0},
	{"Atlanta", "US", "NA", 33.75, -84.39, 6.0},
	{"Miami", "US", "NA", 25.76, -80.19, 6.0},
	{"Seattle", "US", "NA", 47.61, -122.33, 4.0},
	{"San Francisco", "US", "NA", 37.77, -122.42, 4.7},
	{"Mountain View", "US", "NA", 37.39, -122.08, 1.0},
	{"Denver", "US", "NA", 39.74, -104.99, 2.9},
	{"Boston", "US", "NA", 42.36, -71.06, 4.8},
	{"Cleveland", "US", "NA", 41.50, -81.69, 2.1},
	{"Toronto", "CA", "NA", 43.65, -79.38, 6.2},
	{"Vancouver", "CA", "NA", 49.28, -123.12, 2.5},
	{"Montreal", "CA", "NA", 45.50, -73.57, 4.1},
	{"Mexico City", "MX", "NA", 19.43, -99.13, 21.0},
	// South America
	{"Sao Paulo", "BR", "SA", -23.55, -46.63, 22.0},
	{"Rio de Janeiro", "BR", "SA", -22.91, -43.17, 13.0},
	{"Buenos Aires", "AR", "SA", -34.60, -58.38, 15.0},
	{"Santiago", "CL", "SA", -33.45, -70.67, 6.8},
	{"Lima", "PE", "SA", -12.05, -77.04, 10.0},
	{"Bogota", "CO", "SA", 4.71, -74.07, 10.7},
	// Europe
	{"London", "GB", "EU", 51.51, -0.13, 14.0},
	{"Paris", "FR", "EU", 48.86, 2.35, 11.0},
	{"Frankfurt", "DE", "EU", 50.11, 8.68, 2.7},
	{"Berlin", "DE", "EU", 52.52, 13.40, 3.6},
	{"Amsterdam", "NL", "EU", 52.37, 4.90, 2.5},
	{"Brussels", "BE", "EU", 50.85, 4.35, 2.1},
	{"Madrid", "ES", "EU", 40.42, -3.70, 6.6},
	{"Rome", "IT", "EU", 41.90, 12.50, 4.3},
	{"Milan", "IT", "EU", 45.46, 9.19, 3.1},
	{"Zurich", "CH", "EU", 47.37, 8.54, 1.4},
	{"Vienna", "AT", "EU", 48.21, 16.37, 1.9},
	{"Prague", "CZ", "EU", 50.08, 14.44, 1.3},
	{"Warsaw", "PL", "EU", 52.23, 21.01, 1.8},
	{"Stockholm", "SE", "EU", 59.33, 18.07, 1.6},
	{"Helsinki", "FI", "EU", 60.17, 24.94, 1.3},
	{"Dublin", "IE", "EU", 53.35, -6.26, 1.2},
	{"Moscow", "RU", "EU", 55.76, 37.62, 12.5},
	{"Istanbul", "TR", "EU", 41.01, 28.98, 15.5},
	// Middle East & Africa
	{"Dubai", "AE", "ME", 25.20, 55.27, 3.3},
	{"Tel Aviv", "IL", "ME", 32.09, 34.78, 4.2},
	{"Cairo", "EG", "AF", 30.04, 31.24, 20.9},
	{"Lagos", "NG", "AF", 6.52, 3.38, 14.8},
	{"Nairobi", "KE", "AF", -1.29, 36.82, 4.7},
	{"Johannesburg", "ZA", "AF", -26.20, 28.05, 9.6},
	{"Cape Town", "ZA", "AF", -33.92, 18.42, 4.6},
	// Asia
	{"Beijing", "CN", "AS", 39.90, 116.41, 21.5},
	{"Shanghai", "CN", "AS", 31.23, 121.47, 27.0},
	{"Guangzhou", "CN", "AS", 23.13, 113.26, 18.7},
	{"Shenzhen", "CN", "AS", 22.54, 114.06, 17.5},
	{"Chengdu", "CN", "AS", 30.57, 104.07, 16.3},
	{"Tianjin", "CN", "AS", 39.13, 117.20, 13.6},
	{"Wuhan", "CN", "AS", 30.59, 114.31, 11.0},
	{"Xian", "CN", "AS", 34.34, 108.94, 12.9},
	{"Hangzhou", "CN", "AS", 30.27, 120.16, 10.4},
	{"Hong Kong", "HK", "AS", 22.32, 114.17, 7.5},
	{"Taipei", "TW", "AS", 25.03, 121.57, 7.0},
	{"Tokyo", "JP", "AS", 35.68, 139.69, 37.0},
	{"Osaka", "JP", "AS", 34.69, 135.50, 19.0},
	{"Seoul", "KR", "AS", 37.57, 126.98, 25.5},
	{"Singapore", "SG", "AS", 1.35, 103.82, 5.9},
	{"Bangkok", "TH", "AS", 13.76, 100.50, 10.5},
	{"Jakarta", "ID", "AS", -6.21, 106.85, 10.6},
	{"Manila", "PH", "AS", 14.60, 120.98, 13.9},
	{"Mumbai", "IN", "AS", 19.08, 72.88, 20.4},
	{"Delhi", "IN", "AS", 28.70, 77.10, 31.0},
	{"Bangalore", "IN", "AS", 12.97, 77.59, 12.3},
	// Oceania
	{"Sydney", "AU", "OC", -33.87, 151.21, 5.3},
	{"Melbourne", "AU", "OC", -37.81, 144.96, 5.1},
	{"Auckland", "NZ", "OC", -36.85, 174.76, 1.7},
}

// CityIndex returns the index of the named city in Cities, or -1.
func CityIndex(name string) int {
	for i, c := range Cities {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// CitiesInCountry returns the indices of all catalog cities in the given
// country.
func CitiesInCountry(country string) []int {
	var out []int
	for i, c := range Cities {
		if c.Country == country {
			out = append(out, i)
		}
	}
	return out
}
