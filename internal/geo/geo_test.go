package geo

import (
	"math"
	"math/rand"
	"net/netip"
	"testing"
)

func TestBuildDeterministic(t *testing.T) {
	a := Build(Config{Seed: 42, NumASes: 20, BlocksPerAS: 2})
	b := Build(Config{Seed: 42, NumASes: 20, BlocksPerAS: 2})
	if a.NumASes() != 20 || b.NumASes() != 20 {
		t.Fatalf("NumASes = %d/%d", a.NumASes(), b.NumASes())
	}
	for i := 0; i < 20; i++ {
		x, y := a.ASByIndex(i), b.ASByIndex(i)
		if x.Name != y.Name || x.Country != y.Country || len(x.Blocks) != len(y.Blocks) {
			t.Fatalf("AS %d differs between identical builds", i)
		}
		for j := range x.Blocks {
			if x.Blocks[j] != y.Blocks[j] {
				t.Fatalf("AS %d block %d differs", i, j)
			}
		}
	}
}

func TestBuildDifferentSeedsDiffer(t *testing.T) {
	// The incumbent ASes (one per country) are seed-independent by
	// design; the randomized tail beyond them must differ across seeds.
	a := Build(Config{Seed: 1, NumASes: 120, BlocksPerAS: 1})
	b := Build(Config{Seed: 2, NumASes: 120, BlocksPerAS: 1})
	same := 0
	for i := 60; i < 120; i++ {
		if a.ASByIndex(i).Country == b.ASByIndex(i).Country {
			same++
		}
	}
	if same == 60 {
		t.Fatal("different seeds produced identical AS countries")
	}
}

func TestBlocksAvoidReservedSpace(t *testing.T) {
	w := Build(Config{Seed: 3, NumASes: 200, BlocksPerAS: 3})
	for i := 0; i < w.NumASes(); i++ {
		for _, blk := range w.ASByIndex(i).Blocks {
			hi := blk >> 8
			if isReservedHi(hi) {
				t.Fatalf("AS %d owns reserved block %d.x", i, hi)
			}
		}
	}
}

func TestLocateRoundTrip(t *testing.T) {
	w := Build(Config{Seed: 4, NumASes: 50, BlocksPerAS: 2})
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 500; i++ {
		addr := w.RandomClient(rng)
		loc, ok := w.Locate(addr)
		if !ok {
			t.Fatalf("RandomClient produced unlocatable address %s", addr)
		}
		as, ok := w.ASOf(addr)
		if !ok {
			t.Fatalf("RandomClient produced AS-less address %s", addr)
		}
		// The city must be one of the AS's cities.
		found := false
		for _, ci := range as.CityIdx {
			if Cities[ci].Name == loc.City {
				found = true
			}
		}
		if !found {
			t.Fatalf("address %s located in %s, not among its AS's cities", addr, loc.City)
		}
	}
}

func TestLocateSame24SameCity(t *testing.T) {
	w := Build(Config{Seed: 5, NumASes: 50, BlocksPerAS: 2})
	rng := rand.New(rand.NewSource(10))
	for i := 0; i < 200; i++ {
		addr := w.RandomClient(rng)
		a4 := addr.As4()
		sibling := netip.AddrFrom4([4]byte{a4[0], a4[1], a4[2], a4[3] ^ 0x55})
		l1, ok1 := w.Locate(addr)
		l2, ok2 := w.Locate(sibling)
		if !ok1 || !ok2 || l1 != l2 {
			t.Fatalf("same /24 located differently: %s=%v %s=%v", addr, l1, sibling, l2)
		}
	}
}

func TestLocateOutsidePlan(t *testing.T) {
	w := Build(Config{Seed: 6, NumASes: 10, BlocksPerAS: 1})
	for _, s := range []string{"127.0.0.1", "10.1.2.3", "192.168.0.1", "169.254.252.1", "224.0.0.1"} {
		if _, ok := w.Locate(netip.MustParseAddr(s)); ok {
			t.Errorf("reserved address %s located", s)
		}
		if _, ok := w.ASOf(netip.MustParseAddr(s)); ok {
			t.Errorf("reserved address %s has an AS", s)
		}
	}
}

func TestIPv6Clients(t *testing.T) {
	w := Build(Config{Seed: 7, NumASes: 40, BlocksPerAS: 1})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		addr := w.RandomClientV6(rng)
		if !addr.Is6() || addr.Is4In6() {
			t.Fatalf("RandomClientV6 returned %s", addr)
		}
		if _, ok := w.Locate(addr); !ok {
			t.Fatalf("IPv6 client %s unlocatable", addr)
		}
		// Same /48 must locate identically.
		a := addr.As16()
		a[15] ^= 0x3C
		a[8] ^= 0xFF // below /48 boundary
		sibling := netip.AddrFrom16(a)
		l1, _ := w.Locate(addr)
		l2, ok := w.Locate(sibling)
		if !ok || l1 != l2 {
			t.Fatalf("same /48 located differently: %v vs %v", l1, l2)
		}
	}
}

func TestAddrInCityDeterministic(t *testing.T) {
	w := Build(Config{Seed: 8, NumASes: 60, BlocksPerAS: 2})
	ci := CityIndex("Chicago")
	if ci < 0 {
		t.Fatal("Chicago missing from catalog")
	}
	a := w.AddrInCity(ci, 0, 0)
	b := w.AddrInCity(ci, 0, 0)
	if a != b {
		t.Fatal("AddrInCity not deterministic")
	}
	c := w.AddrInCity(ci, 1, 0)
	if len(w.SubnetsInCity(ci)) > 1 && a == c {
		t.Fatal("different salts produced same subnet")
	}
	loc, ok := w.Locate(a)
	if !ok || loc.City != "Chicago" {
		t.Fatalf("AddrInCity(Chicago) located at %v", loc)
	}
}

func TestDistanceKm(t *testing.T) {
	ny := Location{Lat: 40.71, Lon: -74.01}
	london := Location{Lat: 51.51, Lon: -0.13}
	d := DistanceKm(ny, london)
	if d < 5400 || d > 5700 {
		t.Errorf("NY–London = %.0f km, want ≈5570", d)
	}
	if DistanceKm(ny, ny) != 0 {
		t.Error("zero distance to self")
	}
	// Symmetry.
	if math.Abs(DistanceKm(ny, london)-DistanceKm(london, ny)) > 1e-9 {
		t.Error("distance not symmetric")
	}
	// Antipodal-ish sanity: nothing exceeds half the circumference.
	syd := Location{Lat: -33.87, Lon: 151.21}
	if d := DistanceKm(london, syd); d > earthHalfTurnKm+10 {
		t.Errorf("London–Sydney = %.0f km exceeds half circumference", d)
	}
}

func TestRTTModelScale(t *testing.T) {
	cle := cityLocation(CityIndex("Cleveland"))
	chi := cityLocation(CityIndex("Chicago"))
	jnb := cityLocation(CityIndex("Johannesburg"))
	zrh := cityLocation(CityIndex("Zurich"))
	rttChi := RTTMillis(cle, chi)
	rttJnb := RTTMillis(cle, jnb)
	rttZrh := RTTMillis(cle, zrh)
	if rttChi < 15 || rttChi > 50 {
		t.Errorf("Cleveland–Chicago RTT = %.0f ms, want Table 2 scale (~35)", rttChi)
	}
	if rttZrh < 120 || rttZrh > 200 {
		t.Errorf("Cleveland–Zurich RTT = %.0f ms, want ~155", rttZrh)
	}
	if rttJnb < 230 || rttJnb > 330 {
		t.Errorf("Cleveland–Johannesburg RTT = %.0f ms, want ~285", rttJnb)
	}
	if !(rttChi < rttZrh && rttZrh < rttJnb) {
		t.Error("RTT ordering violated")
	}
}

func TestCityHelpers(t *testing.T) {
	if CityIndex("Nowhere") != -1 {
		t.Error("CityIndex for unknown city must be -1")
	}
	cn := CitiesInCountry("CN")
	if len(cn) < 3 {
		t.Errorf("expected ≥3 Chinese cities, got %d", len(cn))
	}
	for _, i := range cn {
		if Cities[i].Country != "CN" {
			t.Errorf("CitiesInCountry returned %s", Cities[i].Name)
		}
	}
	if len(CitiesInCountry("XX")) != 0 {
		t.Error("unknown country must have no cities")
	}
}

func TestRandomClientWeighting(t *testing.T) {
	w := Build(Config{Seed: 12, NumASes: 300, BlocksPerAS: 2})
	rng := rand.New(rand.NewSource(13))
	counts := map[string]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		addr := w.RandomClient(rng)
		loc, _ := w.Locate(addr)
		counts[loc.City]++
	}
	// Tokyo (weight 37) should be sampled far more than Mountain View
	// (weight 1), provided both are covered by some AS.
	if counts["Tokyo"] > 0 && counts["Mountain View"] > 0 &&
		counts["Tokyo"] < counts["Mountain View"] {
		t.Errorf("weighting inverted: Tokyo=%d MountainView=%d",
			counts["Tokyo"], counts["Mountain View"])
	}
}
