// Package geo provides the synthetic Internet used as a substitute for
// the paper's production substrate: a world of cities with coordinates,
// autonomous systems with address space carved into /24 (IPv4) and /48
// (IPv6) subnets mapped to cities, an IP→location lookup standing in for
// the EdgeScape geolocation service, and a distance-driven latency model.
//
// The address plan is deliberately simple and fully deterministic:
// IPv4 space is allocated in /16 blocks starting at 1.0.0.0 (skipping
// reserved ranges), each block belongs to one AS, and each /24 inside a
// block is pinned to one of the AS's cities. IPv6 mirrors this with one
// /32 per AS and /48 subnets.
package geo

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"sort"
)

// AS is a synthetic autonomous system.
type AS struct {
	Number  int
	Name    string
	Country string
	// CityIdx are indices into Cities; every prefix of the AS lands in
	// one of these.
	CityIdx []int
	// Blocks are the /16 IPv4 blocks owned by this AS (the upper 16 bits
	// of the address).
	Blocks []uint16
	// V6Block is the upper 32 bits of the AS's IPv6 /32 allocation.
	V6Block uint32
}

// Internet is the built topology. It is immutable after Build and safe
// for concurrent use.
type Internet struct {
	ases []AS
	// blockOwner maps /16 (upper 16 address bits) → AS index.
	blockOwner map[uint16]int
	// blockCity maps /16 → 256 city indices, one per /24.
	blockCity map[uint16]*[256]uint8
	// v6Owner maps /32 (upper 32 bits) → AS index.
	v6Owner map[uint32]int
	// cityWeight drives client sampling.
	citySampler []float64
	// citySubnets precomputes, per catalog city, the /24 subnets (upper
	// 24 bits) mapped to it.
	citySubnets [][]uint32
}

// Config controls topology generation.
type Config struct {
	Seed int64
	// NumASes is the number of autonomous systems to create (min 1).
	NumASes int
	// BlocksPerAS is the number of /16 IPv4 blocks each AS receives.
	BlocksPerAS int
}

// DefaultConfig is sized so that experiments have plenty of distinct
// /24s (≈ 2.5M host addresses per AS) without large memory cost.
var DefaultConfig = Config{Seed: 1, NumASes: 400, BlocksPerAS: 2}

// Build constructs the synthetic Internet. The same Config always yields
// the same topology.
func Build(cfg Config) *Internet {
	if cfg.NumASes < 1 {
		cfg.NumASes = 1
	}
	if cfg.BlocksPerAS < 1 {
		cfg.BlocksPerAS = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Internet{
		blockOwner: make(map[uint16]int),
		blockCity:  make(map[uint16]*[256]uint8),
		v6Owner:    make(map[uint32]int),
	}
	for _, c := range Cities {
		w.citySampler = append(w.citySampler, c.Weight)
	}

	// Group catalog cities by country so an AS's footprint is plausible.
	countries := make([]string, 0)
	seen := map[string]bool{}
	for _, c := range Cities {
		if !seen[c.Country] {
			seen[c.Country] = true
			countries = append(countries, c.Country)
		}
	}
	sort.Strings(countries)

	nextBlock := uint16(1 << 8) // start at 1.0.0.0/16
	for i := 0; i < cfg.NumASes; i++ {
		// The first ASes are national incumbents, one per country and
		// covering all its cities, so that — as long as NumASes is at
		// least the number of catalog countries — every city has
		// address space. Later ASes pick a country and city subset at
		// random.
		var country string
		fullCoverage := i < len(countries)
		if fullCoverage {
			country = countries[i]
		} else {
			country = countries[rng.Intn(len(countries))]
		}
		cityIdx := CitiesInCountry(country)
		// Most non-incumbent ASes serve a subset of their country's
		// cities.
		if !fullCoverage && len(cityIdx) > 1 {
			n := 1 + rng.Intn(len(cityIdx))
			perm := rng.Perm(len(cityIdx))
			sub := make([]int, 0, n)
			for _, p := range perm[:n] {
				sub = append(sub, cityIdx[p])
			}
			sort.Ints(sub)
			cityIdx = sub
		}
		as := AS{
			Number:  64512 + i,
			Name:    fmt.Sprintf("AS%d-%s", 64512+i, country),
			Country: country,
			CityIdx: cityIdx,
			V6Block: 0x20010000 + uint32(i), // 2001:xxxx::/32 style
		}
		for b := 0; b < cfg.BlocksPerAS; b++ {
			blk := nextBlock
			nextBlock++
			// Skip blocks inside reserved /8s (0, 10, 127, 169, 172,
			// 192, 198, 203, 224+) so synthetic space is always
			// "routable" and never collides with test constants.
			for isReservedHi(blk >> 8) {
				blk = nextBlock
				nextBlock++
			}
			as.Blocks = append(as.Blocks, blk)
			w.blockOwner[blk] = i
			var cities [256]uint8
			for s := 0; s < 256; s++ {
				cities[s] = uint8(cityIdx[rng.Intn(len(cityIdx))])
			}
			w.blockCity[blk] = &cities
		}
		w.v6Owner[as.V6Block] = i
		w.ases = append(w.ases, as)
	}
	w.citySubnets = make([][]uint32, len(Cities))
	blocks := make([]uint16, 0, len(w.blockCity))
	for blk := range w.blockCity {
		blocks = append(blocks, blk)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	for _, blk := range blocks {
		cities := w.blockCity[blk]
		for s := 0; s < 256; s++ {
			ci := int(cities[s])
			w.citySubnets[ci] = append(w.citySubnets[ci], uint32(blk)<<8|uint32(s))
		}
	}
	return w
}

func isReservedHi(hi uint16) bool {
	switch hi {
	case 0, 10, 100, 127, 169, 172, 192, 198, 203:
		return true
	}
	return hi >= 224
}

// NumASes returns the number of autonomous systems.
func (w *Internet) NumASes() int { return len(w.ases) }

// ASByIndex returns the i-th AS.
func (w *Internet) ASByIndex(i int) AS { return w.ases[i] }

// ASOf returns the AS owning addr's block and true, or a zero AS and
// false for addresses outside the synthetic plan.
func (w *Internet) ASOf(addr netip.Addr) (AS, bool) {
	idx, ok := w.asIndexOf(addr)
	if !ok {
		return AS{}, false
	}
	return w.ases[idx], true
}

func (w *Internet) asIndexOf(addr netip.Addr) (int, bool) {
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	if addr.Is4() {
		a := addr.As4()
		blk := uint16(a[0])<<8 | uint16(a[1])
		idx, ok := w.blockOwner[blk]
		return idx, ok
	}
	a := addr.As16()
	hi := binary.BigEndian.Uint32(a[:4])
	idx, ok := w.v6Owner[hi]
	return idx, ok
}

// Locate is the EdgeScape substitute: it maps an address to the location
// of its /24 (IPv4) or /48 (IPv6) subnet. The bool is false for addresses
// outside the plan (reserved, loopback, etc.).
func (w *Internet) Locate(addr netip.Addr) (Location, bool) {
	ci, ok := w.cityIndexOf(addr)
	if !ok {
		return Location{}, false
	}
	return cityLocation(ci), true
}

// LocateCityIndex returns the catalog index of the city an address maps
// to.
func (w *Internet) LocateCityIndex(addr netip.Addr) (int, bool) {
	return w.cityIndexOf(addr)
}

func (w *Internet) cityIndexOf(addr netip.Addr) (int, bool) {
	if addr.Is4In6() {
		addr = addr.Unmap()
	}
	if addr.Is4() {
		a := addr.As4()
		blk := uint16(a[0])<<8 | uint16(a[1])
		cities, ok := w.blockCity[blk]
		if !ok {
			return 0, false
		}
		return int(cities[a[2]]), true
	}
	a := addr.As16()
	hi := binary.BigEndian.Uint32(a[:4])
	asIdx, ok := w.v6Owner[hi]
	if !ok {
		return 0, false
	}
	as := w.ases[asIdx]
	// /48 index selects deterministically among the AS's cities.
	sub := binary.BigEndian.Uint16(a[4:6])
	return as.CityIdx[int(sub)%len(as.CityIdx)], true
}

// Location is a resolved geographic position.
type Location struct {
	City    string
	Country string
	Lat     float64
	Lon     float64
}

func cityLocation(i int) Location {
	c := Cities[i]
	return Location{City: c.Name, Country: c.Country, Lat: c.Lat, Lon: c.Lon}
}

// LocationOfCity returns the location of a catalog city by index.
func LocationOfCity(i int) Location { return cityLocation(i) }

// AddrInCity returns a deterministic IPv4 address in the given city: the
// n-th host of the n-th matching /24 across the address plan. Different
// (salt, host) pairs give different subnets/hosts. It panics if no AS
// covers the city (the default catalog always has coverage).
func (w *Internet) AddrInCity(cityIdx int, salt, host int) netip.Addr {
	subnets := w.subnetsInCity(cityIdx)
	if len(subnets) == 0 {
		panic(fmt.Sprintf("geo: no /24 in city %s", Cities[cityIdx].Name))
	}
	s := subnets[salt%len(subnets)]
	return netip.AddrFrom4([4]byte{byte(s >> 16), byte(s >> 8), byte(s), byte(1 + host%254)})
}

// SubnetsInCity returns all /24 subnets (as the upper 24 bits) mapped to
// the city.
func (w *Internet) SubnetsInCity(cityIdx int) []uint32 {
	return w.subnetsInCity(cityIdx)
}

func (w *Internet) subnetsInCity(cityIdx int) []uint32 {
	return w.citySubnets[cityIdx]
}

// RandomClient draws a random client IPv4 address, with cities weighted
// by population.
func (w *Internet) RandomClient(rng *rand.Rand) netip.Addr {
	ci := w.randomCity(rng)
	subnets := w.subnetsInCity(ci)
	for subnets == nil {
		ci = w.randomCity(rng)
		subnets = w.subnetsInCity(ci)
	}
	s := subnets[rng.Intn(len(subnets))]
	return netip.AddrFrom4([4]byte{byte(s >> 16), byte(s >> 8), byte(s), byte(1 + rng.Intn(254))})
}

// RandomClientV6 draws a random IPv6 client address.
func (w *Internet) RandomClientV6(rng *rand.Rand) netip.Addr {
	as := w.ases[rng.Intn(len(w.ases))]
	var a [16]byte
	binary.BigEndian.PutUint32(a[:4], as.V6Block)
	binary.BigEndian.PutUint16(a[4:6], uint16(rng.Intn(1<<16)))
	a[15] = byte(1 + rng.Intn(254))
	return netip.AddrFrom16(a)
}

func (w *Internet) randomCity(rng *rand.Rand) int {
	total := 0.0
	for _, wt := range w.citySampler {
		total += wt
	}
	r := rng.Float64() * total
	for i, wt := range w.citySampler {
		r -= wt
		if r < 0 {
			return i
		}
	}
	return len(w.citySampler) - 1
}

// DistanceKm returns the great-circle distance between two locations in
// kilometers (haversine on a spherical Earth).
func DistanceKm(a, b Location) float64 {
	const earthRadiusKm = 6371.0
	lat1 := a.Lat * math.Pi / 180
	lat2 := b.Lat * math.Pi / 180
	dLat := (b.Lat - a.Lat) * math.Pi / 180
	dLon := (b.Lon - a.Lon) * math.Pi / 180
	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// Latency model constants: a fixed access/processing overhead plus a
// distance-proportional term. With these values Cleveland→Chicago comes
// out ≈25 ms and Cleveland→Johannesburg ≈290 ms, matching the scale of
// the paper's Table 2 measurements.
const (
	BaseRTTMillis   = 14.0
	MillisPerKm     = 0.02
	earthHalfTurnKm = 20037.0
)

// RTTMillis returns the modeled round-trip time between two locations.
func RTTMillis(a, b Location) float64 {
	return BaseRTTMillis + DistanceKm(a, b)*MillisPerKm
}
