// Package passive analyzes authoritative-side query logs the way the
// paper analyzes the CDN dataset: it classifies each resolver's ECS
// probing pattern (§6.1), tabulates the source prefix lengths resolvers
// convey (Table 1, including the jammed-last-byte detection), and
// compares passive against active discovery of ECS resolvers (§5).
package passive

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"time"

	"ecsdns/internal/authority"
	"ecsdns/internal/dnswire"
	"ecsdns/internal/ecsopt"
)

// ProbePattern is a §6.1 behavior class.
type ProbePattern int

// Probing behavior classes, in the order the paper reports them.
const (
	// PatternAllQueries: 100% of A/AAAA queries carry ECS.
	PatternAllQueries ProbePattern = iota
	// PatternHostnamesNoCache: ECS consistently for specific hostnames,
	// re-queried within TTL (caching disabled for them).
	PatternHostnamesNoCache
	// PatternInterval: ECS probes for a single query string at ~30 min
	// multiples, carrying the loopback address.
	PatternInterval
	// PatternOnMiss: ECS for specific hostnames but never within a
	// minute of the previous query for the same name.
	PatternOnMiss
	// PatternUnclassified: ECS on some subset with no discernible
	// pattern.
	PatternUnclassified
	// PatternNoECS: the resolver never sent ECS (not part of the 4147).
	PatternNoECS
)

// String returns the class name.
func (p ProbePattern) String() string {
	switch p {
	case PatternAllQueries:
		return "all-queries"
	case PatternHostnamesNoCache:
		return "hostnames-no-cache"
	case PatternInterval:
		return "interval-loopback"
	case PatternOnMiss:
		return "on-miss"
	case PatternUnclassified:
		return "unclassified"
	case PatternNoECS:
		return "no-ecs"
	}
	return "unknown"
}

// ResolverLog is the per-resolver slice of a passive dataset.
type ResolverLog struct {
	Resolver netip.Addr
	Records  []authority.LogRecord // time-sorted
}

// GroupByResolver splits a log stream per resolver, sorting each
// resolver's records by time.
func GroupByResolver(recs []authority.LogRecord) []ResolverLog {
	byRes := make(map[netip.Addr][]authority.LogRecord)
	for _, r := range recs {
		byRes[r.Resolver] = append(byRes[r.Resolver], r)
	}
	out := make([]ResolverLog, 0, len(byRes))
	for addr, rs := range byRes {
		sort.Slice(rs, func(i, j int) bool { return rs[i].Time.Before(rs[j].Time) })
		out = append(out, ResolverLog{Resolver: addr, Records: rs})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Resolver.Less(out[j].Resolver) })
	return out
}

// ClassifyProbing assigns a resolver's log to a §6.1 behavior class.
// answerTTL is the TTL the authority returned (20 s for the CDN
// dataset); it feeds the caching-disabled detection.
func ClassifyProbing(log ResolverLog, answerTTL time.Duration) ProbePattern {
	addressQueries := 0
	ecsQueries := 0
	ecsNames := map[dnswire.Name]bool{}
	plainNames := map[dnswire.Name]bool{}
	loopbackOnly := true
	lastByName := map[dnswire.Name]time.Time{}
	ecsWithinTTL := false
	ecsWithinMinute := false
	// plainLongGap marks names that were queried *without* ECS at a gap
	// of a minute or more — inconsistent with the on-miss pattern.
	plainLongGap := map[dnswire.Name]bool{}
	var ecsTimes []time.Time

	for _, r := range log.Records {
		if r.Type != dnswire.TypeA && r.Type != dnswire.TypeAAAA {
			continue
		}
		addressQueries++
		last, seen := lastByName[r.Name]
		if seen {
			gap := r.Time.Sub(last)
			if r.QueryHasECS && gap < answerTTL {
				ecsWithinTTL = true
			}
			if r.QueryHasECS && gap < time.Minute {
				ecsWithinMinute = true
			}
			if !r.QueryHasECS && gap >= time.Minute {
				plainLongGap[r.Name] = true
			}
		}
		lastByName[r.Name] = r.Time
		if r.QueryHasECS {
			ecsQueries++
			ecsNames[r.Name] = true
			if r.QueryECS.Addr != LoopbackAddr {
				loopbackOnly = false
			}
			ecsTimes = append(ecsTimes, r.Time)
		} else {
			plainNames[r.Name] = true
		}
	}

	if ecsQueries == 0 {
		return PatternNoECS
	}
	if ecsQueries == addressQueries {
		return PatternAllQueries
	}
	// Interval probers dedicate a single query string to loopback
	// probes at regular multiples of the period; the same string may
	// also be queried plainly between probes, so this check precedes
	// the mixed-name test.
	if len(ecsNames) == 1 && loopbackOnly && intervalsRegular(ecsTimes, 30*time.Minute) {
		return PatternInterval
	}
	// Names that appear with both ECS and plain queries break the
	// "specific hostnames, caching disabled" pattern…
	mixed := false
	for n := range ecsNames {
		if plainNames[n] {
			mixed = true
			break
		}
	}
	if ecsWithinTTL && !mixed {
		return PatternHostnamesNoCache
	}
	// …but not the on-miss pattern, whose within-a-minute queries for
	// an ECS hostname legitimately go out plain. The pattern does
	// require consistency: an ECS hostname queried plainly at a long
	// gap would have been a cache miss, so a true on-miss resolver
	// would have attached ECS.
	if !ecsWithinMinute {
		consistent := true
		for n := range ecsNames {
			if plainLongGap[n] {
				consistent = false
				break
			}
		}
		if consistent {
			return PatternOnMiss
		}
	}
	return PatternUnclassified
}

// LoopbackAddr is the probe address interval probers use.
var LoopbackAddr = netip.MustParseAddr("127.0.0.1")

// intervalsRegular reports whether successive times are spaced at
// (approximate) multiples of period.
func intervalsRegular(ts []time.Time, period time.Duration) bool {
	if len(ts) < 2 {
		return true
	}
	for i := 1; i < len(ts); i++ {
		gap := ts[i].Sub(ts[i-1])
		if gap <= 0 {
			continue
		}
		mult := float64(gap) / float64(period)
		nearest := float64(int(mult + 0.5))
		if nearest == 0 {
			return false
		}
		if diff := mult - nearest; diff > 0.2 || diff < -0.2 {
			return false
		}
	}
	return true
}

// ProbingCensus counts resolvers per behavior class.
func ProbingCensus(logs []ResolverLog, answerTTL time.Duration) map[ProbePattern]int {
	out := make(map[ProbePattern]int)
	for _, l := range logs {
		out[ClassifyProbing(l, answerTTL)]++
	}
	return out
}

// PrefixLengthRow is one line of Table 1: a combination of source prefix
// lengths a resolver used.
type PrefixLengthRow struct {
	Label string
	Count int
}

// PrefixProfileOf renders a resolver's prefix-length usage as a Table 1
// row label: the sorted list of lengths, annotated with "/jammed last
// byte" when every 32-bit prefix shares a fixed final octet, and with
// "(IPv6)" for v6 lengths.
func PrefixProfileOf(log ResolverLog) string {
	v4 := map[uint8]bool{}
	v6 := map[uint8]bool{}
	jammed := true
	var jamValue *byte
	for _, r := range log.Records {
		if !r.QueryHasECS {
			continue
		}
		cs := r.QueryECS
		switch cs.Family {
		case ecsopt.FamilyIPv4:
			v4[cs.SourcePrefix] = true
			if cs.SourcePrefix == 32 {
				b := cs.Addr.As4()[3]
				if jamValue == nil {
					jamValue = &b
				} else if *jamValue != b {
					jammed = false
				}
			}
		case ecsopt.FamilyIPv6:
			v6[cs.SourcePrefix] = true
		}
	}
	var parts []string
	for _, l := range sortedKeys(v4) {
		s := fmt.Sprintf("%d", l)
		if l == 32 && jamValue != nil && jammed {
			s += "/jammed last byte"
		}
		parts = append(parts, s)
	}
	label := strings.Join(parts, ",")
	if len(v6) > 0 {
		var p6 []string
		for _, l := range sortedKeys(v6) {
			p6 = append(p6, fmt.Sprintf("%d", l))
		}
		if label != "" {
			label += " + "
		}
		label += strings.Join(p6, ",") + " (IPv6)"
	}
	if label == "" {
		label = "none"
	}
	return label
}

func sortedKeys(m map[uint8]bool) []uint8 {
	out := make([]uint8, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PrefixLengthTable builds Table 1 from per-resolver logs: rows sorted by
// descending count then label.
func PrefixLengthTable(logs []ResolverLog) []PrefixLengthRow {
	counts := map[string]int{}
	for _, l := range logs {
		label := PrefixProfileOf(l)
		if label == "none" {
			continue
		}
		counts[label]++
	}
	rows := make([]PrefixLengthRow, 0, len(counts))
	for label, c := range counts {
		rows = append(rows, PrefixLengthRow{Label: label, Count: c})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Label < rows[j].Label
	})
	return rows
}

// Discovery compares passive and active resolver discovery (§5).
type Discovery struct {
	PassiveECS int // ECS resolvers seen in the passive logs
	ActiveECS  int // egress resolvers found via the scan
	Overlap    int // active resolvers also present passively
}

// CompareDiscovery computes the §5 comparison from the two resolver
// sets.
func CompareDiscovery(passive, active map[netip.Addr]bool) Discovery {
	d := Discovery{PassiveECS: len(passive), ActiveECS: len(active)}
	for a := range active {
		if passive[a] {
			d.Overlap++
		}
	}
	return d
}

// ECSResolverSet extracts the set of resolvers that sent at least one
// ECS query.
func ECSResolverSet(logs []ResolverLog) map[netip.Addr]bool {
	out := make(map[netip.Addr]bool)
	for _, l := range logs {
		for _, r := range l.Records {
			if r.QueryHasECS {
				out[l.Resolver] = true
				break
			}
		}
	}
	return out
}

// RootECSViolators counts resolvers that sent ECS queries to a root
// server log (the DITL analysis: 15 resolvers).
func RootECSViolators(recs []authority.LogRecord) int {
	seen := map[netip.Addr]bool{}
	for _, r := range recs {
		if r.QueryHasECS {
			seen[r.Resolver] = true
		}
	}
	return len(seen)
}
