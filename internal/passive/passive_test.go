package passive

import (
	"net/netip"
	"testing"
	"time"

	"ecsdns/internal/authority"
	"ecsdns/internal/dnswire"
	"ecsdns/internal/ecsopt"
)

var t0 = time.Date(2018, 11, 6, 0, 0, 0, 0, time.UTC)

func lr(sec int, res string, name string, ecs *ecsopt.ClientSubnet) authority.LogRecord {
	r := authority.LogRecord{
		Time:     t0.Add(time.Duration(sec) * time.Second),
		Resolver: netip.MustParseAddr(res),
		Name:     dnswire.MustParseName(name),
		Type:     dnswire.TypeA,
	}
	if ecs != nil {
		r.QueryHasECS = true
		r.QueryECS = *ecs
	}
	return r
}

func subnet(s string, bits int) *ecsopt.ClientSubnet {
	cs := ecsopt.MustNew(netip.MustParseAddr(s), bits)
	return &cs
}

func TestGroupByResolverSortsAndSplits(t *testing.T) {
	recs := []authority.LogRecord{
		lr(10, "1.1.1.1", "a.example.", nil),
		lr(5, "1.1.1.1", "b.example.", nil),
		lr(1, "2.2.2.2", "c.example.", nil),
	}
	logs := GroupByResolver(recs)
	if len(logs) != 2 {
		t.Fatalf("groups = %d", len(logs))
	}
	if logs[0].Resolver != netip.MustParseAddr("1.1.1.1") {
		t.Fatal("groups not sorted by resolver")
	}
	if logs[0].Records[0].Name != "b.example." {
		t.Fatal("records not time-sorted")
	}
}

func TestClassifyAllQueries(t *testing.T) {
	log := ResolverLog{Resolver: netip.MustParseAddr("1.1.1.1"), Records: []authority.LogRecord{
		lr(0, "1.1.1.1", "a.example.", subnet("203.0.113.0", 24)),
		lr(5, "1.1.1.1", "b.example.", subnet("203.0.114.0", 24)),
		lr(9, "1.1.1.1", "c.example.", subnet("203.0.115.0", 24)),
	}}
	if got := ClassifyProbing(log, 20*time.Second); got != PatternAllQueries {
		t.Fatalf("got %v, want all-queries", got)
	}
}

func TestClassifyHostnamesNoCache(t *testing.T) {
	// ECS consistently for one hostname, re-queried inside the 20 s TTL;
	// other names plain.
	log := ResolverLog{Records: []authority.LogRecord{
		lr(0, "1.1.1.1", "pinned.example.", subnet("203.0.113.0", 24)),
		lr(8, "1.1.1.1", "pinned.example.", subnet("203.0.113.0", 24)),
		lr(12, "1.1.1.1", "other.example.", nil),
		lr(16, "1.1.1.1", "pinned.example.", subnet("203.0.113.0", 24)),
	}}
	if got := ClassifyProbing(log, 20*time.Second); got != PatternHostnamesNoCache {
		t.Fatalf("got %v, want hostnames-no-cache", got)
	}
}

func TestClassifyIntervalLoopback(t *testing.T) {
	loop := subnet("127.0.0.1", 32)
	log := ResolverLog{Records: []authority.LogRecord{
		lr(0, "1.1.1.1", "probe.example.", loop),
		lr(30, "1.1.1.1", "a.example.", nil),
		lr(1800, "1.1.1.1", "probe.example.", loop),
		lr(2000, "1.1.1.1", "b.example.", nil),
		lr(5400, "1.1.1.1", "probe.example.", loop), // 2× 30 min later
	}}
	if got := ClassifyProbing(log, 20*time.Second); got != PatternInterval {
		t.Fatalf("got %v, want interval-loopback", got)
	}
}

func TestClassifyOnMiss(t *testing.T) {
	// ECS for one hostname but only when ≥1 min has passed since the
	// previous query for it.
	log := ResolverLog{Records: []authority.LogRecord{
		lr(0, "1.1.1.1", "m.example.", subnet("203.0.113.0", 24)),
		lr(120, "1.1.1.1", "m.example.", subnet("203.0.113.0", 24)),
		lr(130, "1.1.1.1", "x.example.", nil),
		lr(300, "1.1.1.1", "m.example.", subnet("203.0.113.0", 24)),
	}}
	if got := ClassifyProbing(log, 20*time.Second); got != PatternOnMiss {
		t.Fatalf("got %v, want on-miss", got)
	}
}

func TestClassifyUnclassified(t *testing.T) {
	// Same name queried both with and without ECS at odd times.
	log := ResolverLog{Records: []authority.LogRecord{
		lr(0, "1.1.1.1", "a.example.", subnet("203.0.113.0", 24)),
		lr(3, "1.1.1.1", "a.example.", nil),
		lr(9, "1.1.1.1", "a.example.", subnet("203.0.113.0", 24)),
		lr(11, "1.1.1.1", "b.example.", nil),
	}}
	if got := ClassifyProbing(log, 20*time.Second); got != PatternUnclassified {
		t.Fatalf("got %v, want unclassified", got)
	}
}

func TestClassifyNoECS(t *testing.T) {
	log := ResolverLog{Records: []authority.LogRecord{
		lr(0, "1.1.1.1", "a.example.", nil),
	}}
	if got := ClassifyProbing(log, 20*time.Second); got != PatternNoECS {
		t.Fatalf("got %v, want no-ecs", got)
	}
}

func TestProbingCensus(t *testing.T) {
	logs := []ResolverLog{
		{Records: []authority.LogRecord{lr(0, "1.1.1.1", "a.example.", subnet("203.0.113.0", 24))}},
		{Records: []authority.LogRecord{lr(0, "2.2.2.2", "a.example.", nil)}},
	}
	census := ProbingCensus(logs, 20*time.Second)
	if census[PatternAllQueries] != 1 || census[PatternNoECS] != 1 {
		t.Fatalf("census = %v", census)
	}
}

func TestPrefixProfileJammed(t *testing.T) {
	jam := func(third byte) *ecsopt.ClientSubnet {
		cs := ecsopt.MustNew(netip.AddrFrom4([4]byte{203, 0, third, 1}), 32)
		return &cs
	}
	log := ResolverLog{Records: []authority.LogRecord{
		lr(0, "1.1.1.1", "a.example.", jam(1)),
		lr(1, "1.1.1.1", "b.example.", jam(2)),
		lr(2, "1.1.1.1", "c.example.", jam(3)),
	}}
	if got := PrefixProfileOf(log); got != "32/jammed last byte" {
		t.Fatalf("profile = %q", got)
	}
}

func TestPrefixProfileNotJammedWhenBytesVary(t *testing.T) {
	v := func(last byte) *ecsopt.ClientSubnet {
		cs := ecsopt.MustNew(netip.AddrFrom4([4]byte{203, 0, 1, last}), 32)
		return &cs
	}
	log := ResolverLog{Records: []authority.LogRecord{
		lr(0, "1.1.1.1", "a.example.", v(17)),
		lr(1, "1.1.1.1", "b.example.", v(202)),
	}}
	if got := PrefixProfileOf(log); got != "32" {
		t.Fatalf("profile = %q", got)
	}
}

func TestPrefixProfileCombination(t *testing.T) {
	log := ResolverLog{Records: []authority.LogRecord{
		lr(0, "1.1.1.1", "a.example.", subnet("203.0.113.0", 24)),
		lr(1, "1.1.1.1", "b.example.", subnet("203.0.113.128", 25)),
		lr(2, "1.1.1.1", "c.example.", subnet("2001:db8::", 48)),
	}}
	if got := PrefixProfileOf(log); got != "24,25 + 48 (IPv6)" {
		t.Fatalf("profile = %q", got)
	}
}

func TestPrefixLengthTableOrdering(t *testing.T) {
	mk := func(res string, bits int) ResolverLog {
		return ResolverLog{Records: []authority.LogRecord{
			lr(0, res, "a.example.", subnet("203.0.113.0", bits)),
		}}
	}
	logs := []ResolverLog{
		mk("1.1.1.1", 24), mk("2.2.2.2", 24), mk("3.3.3.3", 24),
		mk("4.4.4.4", 22),
		{Records: []authority.LogRecord{lr(0, "5.5.5.5", "a.example.", nil)}},
	}
	rows := PrefixLengthTable(logs)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0].Label != "24" || rows[0].Count != 3 {
		t.Fatalf("top row = %+v", rows[0])
	}
	if rows[1].Label != "22" || rows[1].Count != 1 {
		t.Fatalf("second row = %+v", rows[1])
	}
}

func TestCompareDiscovery(t *testing.T) {
	p := map[netip.Addr]bool{
		netip.MustParseAddr("1.1.1.1"): true,
		netip.MustParseAddr("2.2.2.2"): true,
		netip.MustParseAddr("3.3.3.3"): true,
	}
	a := map[netip.Addr]bool{
		netip.MustParseAddr("2.2.2.2"): true,
		netip.MustParseAddr("9.9.9.9"): true,
	}
	d := CompareDiscovery(p, a)
	if d.PassiveECS != 3 || d.ActiveECS != 2 || d.Overlap != 1 {
		t.Fatalf("discovery = %+v", d)
	}
}

func TestECSResolverSet(t *testing.T) {
	logs := GroupByResolver([]authority.LogRecord{
		lr(0, "1.1.1.1", "a.example.", subnet("203.0.113.0", 24)),
		lr(0, "2.2.2.2", "a.example.", nil),
	})
	set := ECSResolverSet(logs)
	if len(set) != 1 || !set[netip.MustParseAddr("1.1.1.1")] {
		t.Fatalf("set = %v", set)
	}
}

func TestRootECSViolators(t *testing.T) {
	recs := []authority.LogRecord{
		lr(0, "1.1.1.1", ".", subnet("203.0.113.0", 24)),
		lr(1, "1.1.1.1", ".", subnet("203.0.113.0", 24)),
		lr(2, "2.2.2.2", ".", nil),
		lr(3, "3.3.3.3", ".", subnet("203.0.114.0", 24)),
	}
	if got := RootECSViolators(recs); got != 2 {
		t.Fatalf("violators = %d, want 2", got)
	}
}

func TestIntervalsRegular(t *testing.T) {
	mk := func(mins ...int) []time.Time {
		out := make([]time.Time, len(mins))
		for i, m := range mins {
			out[i] = t0.Add(time.Duration(m) * time.Minute)
		}
		return out
	}
	if !intervalsRegular(mk(0, 30, 90, 120), 30*time.Minute) {
		t.Fatal("30-min multiples rejected")
	}
	if intervalsRegular(mk(0, 7, 12), 30*time.Minute) {
		t.Fatal("irregular intervals accepted")
	}
	if !intervalsRegular(mk(0), 30*time.Minute) {
		t.Fatal("single sample must pass")
	}
}
