// Command ecsreplay runs the §7 cache simulations over a trace CSV (as
// produced by cmd/tracegen or exported from real logs in the same
// schema): blow-up factor, coverage-aware hit rates, and bounded-LRU
// eviction behavior.
//
// Usage:
//
//	tracegen -dataset allnames | ecsreplay
//	ecsreplay -in trace.csv -capacity 8192
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"ecsdns/internal/cachesim"
	"ecsdns/internal/traces"
)

func main() {
	in := flag.String("in", "-", "trace CSV path (- for stdin)")
	capacity := flag.Int("capacity", 0, "also replay through a bounded LRU of this many entries")
	flag.Parse()

	if flag.NArg() > 0 {
		log.Fatalf("ecsreplay: unexpected arguments %q (the trace path goes in -in)", flag.Args())
	}
	if *capacity < 0 {
		log.Fatalf("ecsreplay: -capacity must be >= 0, got %d", *capacity)
	}

	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("ecsreplay: %v", err)
		}
		defer f.Close()
		r = f
	}
	recs, err := traces.ReadRecords(bufio.NewReader(r))
	if err != nil {
		log.Fatalf("ecsreplay: %v", err)
	}
	if len(recs) == 0 {
		log.Fatal("ecsreplay: empty trace")
	}

	blow := cachesim.Blowup(recs, 0)
	plain := cachesim.HitRate(recs, false)
	ecs := cachesim.HitRate(recs, true)

	fmt.Printf("trace: %d records, %s → %s\n",
		len(recs), recs[0].Time.Format("15:04:05"), recs[len(recs)-1].Time.Format("15:04:05"))
	fmt.Printf("max cache size:  %6d with ECS, %6d without → blow-up %.2f×\n",
		blow.MaxWithECS, blow.MaxWithoutECS, blow.Factor())
	fmt.Printf("hit rate:        %6.1f%% with ECS, %6.1f%% without\n",
		ecs.Rate(), plain.Rate())

	if *capacity > 0 {
		be := cachesim.BoundedReplay(recs, *capacity, true)
		bp := cachesim.BoundedReplay(recs, *capacity, false)
		fmt.Printf("bounded LRU (%d entries):\n", *capacity)
		fmt.Printf("  with ECS:    hit %6.1f%%, %6.2f premature evictions/100q\n",
			be.HitRate(), be.EvictionRate())
		fmt.Printf("  without ECS: hit %6.1f%%, %6.2f premature evictions/100q\n",
			bp.HitRate(), bp.EvictionRate())
	}
}
