package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: ecsdns/internal/ecscache
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCacheLookup/unbounded/shards-1-4         	  200000	       900.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkCacheLookup/bounded/shards-8-4           	  200000	       749.3 ns/op	       0 B/op	       0 allocs/op
BenchmarkCacheChurn/shards-8-4                    	  200000	       740.4 ns/op	      48 B/op	       0 allocs/op
PASS
ok  	ecsdns/internal/ecscache	1.131s
`

func TestParseSample(t *testing.T) {
	out, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if out.Goos != "linux" || out.Pkg != "ecsdns/internal/ecscache" {
		t.Fatalf("header: %+v", out)
	}
	if len(out.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks", len(out.Benchmarks))
	}
	b := out.Benchmarks[0]
	if b.Name != "BenchmarkCacheLookup/unbounded/shards-1-4" {
		t.Fatalf("name = %q", b.Name)
	}
	if b.Iterations != 200000 || b.NsPerOp != 900.1 {
		t.Fatalf("result: %+v", b)
	}
	if b.Metrics["allocs/op"] != 0 || out.Benchmarks[2].Metrics["B/op"] != 48 {
		t.Fatalf("metrics: %+v", out.Benchmarks)
	}
}

func TestValidateRequire(t *testing.T) {
	out, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if err := validate(out, []string{"BenchmarkCacheLookup", "BenchmarkCacheChurn"}); err != nil {
		t.Fatalf("required names present but validate failed: %v", err)
	}
	if err := validate(out, []string{"BenchmarkMissing"}); err == nil {
		t.Fatal("missing required benchmark accepted")
	}
}

func TestValidateEmpty(t *testing.T) {
	out, err := parse(strings.NewReader("PASS\nok \tecsdns\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := validate(out, nil); err == nil {
		t.Fatal("empty benchmark set accepted")
	}
}

func TestParseSkipsNonResultBenchmarkLines(t *testing.T) {
	// -v interleaving prints the bare name before the result line.
	in := "BenchmarkCacheChurn\nBenchmarkCacheChurn/shards-8-4 \t 100 \t 12.5 ns/op\n"
	out, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 1 || out.Benchmarks[0].NsPerOp != 12.5 {
		t.Fatalf("benchmarks: %+v", out.Benchmarks)
	}
}

func benchWith(name string, allocs float64) Benchmark {
	return Benchmark{Name: name, Iterations: 1, NsPerOp: 100,
		Metrics: map[string]float64{"allocs/op": allocs}}
}

func TestDiffAllocsZeroBaselineStrict(t *testing.T) {
	base := &Output{Benchmarks: []Benchmark{benchWith("BenchmarkX/hot-4", 0)}}
	got := &Output{Benchmarks: []Benchmark{benchWith("BenchmarkX/hot-4", 1)}}
	if _, err := diffAllocs(got, base, "", 50); err == nil {
		t.Fatal("zero-alloc baseline regression accepted despite slack")
	}
	got.Benchmarks[0].Metrics["allocs/op"] = 0
	if report, err := diffAllocs(got, base, "", 0); err != nil {
		t.Fatalf("clean zero-alloc row rejected: %v (%v)", err, report)
	}
}

func TestDiffAllocsSlack(t *testing.T) {
	base := &Output{Benchmarks: []Benchmark{benchWith("BenchmarkY/churn", 100)}}
	got := &Output{Benchmarks: []Benchmark{benchWith("BenchmarkY/churn", 120)}}
	if _, err := diffAllocs(got, base, "", 25); err != nil {
		t.Fatalf("within-slack growth rejected: %v", err)
	}
	if _, err := diffAllocs(got, base, "", 10); err == nil {
		t.Fatal("beyond-slack growth accepted")
	}
}

func TestDiffAllocsGateAndNew(t *testing.T) {
	base := &Output{Benchmarks: []Benchmark{benchWith("BenchmarkZ/a", 0)}}
	got := &Output{Benchmarks: []Benchmark{
		benchWith("BenchmarkZ/a", 5),
		benchWith("BenchmarkZ/brandnew", 9),
	}}
	// Gate excludes the regressed row: passes.
	if _, err := diffAllocs(got, base, "brandnew$", 0); err != nil {
		t.Fatalf("gated-out regression still failed: %v", err)
	}
	// Ungated: the regression fails, the new benchmark passes.
	report, err := diffAllocs(got, base, "", 0)
	if err == nil {
		t.Fatal("regression accepted")
	}
	foundNew := false
	for _, line := range report {
		if strings.Contains(line, "brandnew") && strings.Contains(line, "passes") {
			foundNew = true
		}
	}
	if !foundNew {
		t.Fatalf("new benchmark not reported as passing: %v", report)
	}
}

func TestDiffAllocsMissingMetric(t *testing.T) {
	base := &Output{Benchmarks: []Benchmark{benchWith("BenchmarkW", 3)}}
	got := &Output{Benchmarks: []Benchmark{{Name: "BenchmarkW", Iterations: 1, NsPerOp: 1}}}
	if _, err := diffAllocs(got, base, "", 0); err == nil {
		t.Fatal("missing allocs/op metric accepted")
	}
}
