package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: ecsdns/internal/ecscache
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkCacheLookup/unbounded/shards-1-4         	  200000	       900.1 ns/op	       0 B/op	       0 allocs/op
BenchmarkCacheLookup/bounded/shards-8-4           	  200000	       749.3 ns/op	       0 B/op	       0 allocs/op
BenchmarkCacheChurn/shards-8-4                    	  200000	       740.4 ns/op	      48 B/op	       0 allocs/op
PASS
ok  	ecsdns/internal/ecscache	1.131s
`

func TestParseSample(t *testing.T) {
	out, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if out.Goos != "linux" || out.Pkg != "ecsdns/internal/ecscache" {
		t.Fatalf("header: %+v", out)
	}
	if len(out.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks", len(out.Benchmarks))
	}
	b := out.Benchmarks[0]
	if b.Name != "BenchmarkCacheLookup/unbounded/shards-1-4" {
		t.Fatalf("name = %q", b.Name)
	}
	if b.Iterations != 200000 || b.NsPerOp != 900.1 {
		t.Fatalf("result: %+v", b)
	}
	if b.Metrics["allocs/op"] != 0 || out.Benchmarks[2].Metrics["B/op"] != 48 {
		t.Fatalf("metrics: %+v", out.Benchmarks)
	}
}

func TestValidateRequire(t *testing.T) {
	out, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if err := validate(out, []string{"BenchmarkCacheLookup", "BenchmarkCacheChurn"}); err != nil {
		t.Fatalf("required names present but validate failed: %v", err)
	}
	if err := validate(out, []string{"BenchmarkMissing"}); err == nil {
		t.Fatal("missing required benchmark accepted")
	}
}

func TestValidateEmpty(t *testing.T) {
	out, err := parse(strings.NewReader("PASS\nok \tecsdns\t0.1s\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := validate(out, nil); err == nil {
		t.Fatal("empty benchmark set accepted")
	}
}

func TestParseSkipsNonResultBenchmarkLines(t *testing.T) {
	// -v interleaving prints the bare name before the result line.
	in := "BenchmarkCacheChurn\nBenchmarkCacheChurn/shards-8-4 \t 100 \t 12.5 ns/op\n"
	out, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Benchmarks) != 1 || out.Benchmarks[0].NsPerOp != 12.5 {
		t.Fatalf("benchmarks: %+v", out.Benchmarks)
	}
}
