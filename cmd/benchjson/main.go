// Command benchjson converts `go test -bench` text output into a
// stable JSON artifact and validates it, so benchmark results can be
// committed, diffed, and uploaded from CI without scraping logs.
//
// Usage:
//
//	go test -run NONE -bench . -benchmem ./internal/ecscache | \
//	    benchjson -require BenchmarkCacheLookup,BenchmarkCacheChurn \
//	              -out results/BENCH_cache.json
//
// The parser understands the standard benchmark line format — name,
// iteration count, then (value, unit) pairs — plus the goos/goarch/
// pkg/cpu header keys. Validation fails (exit 1) when no benchmark
// lines parse, when a benchmark is missing its ns/op measurement, or
// when a -require name has no matching benchmark.
//
// With -baseline, allocs/op is diffed against a committed artifact:
//
//	benchjson -baseline results/BENCH_cache.json -slack 25 < bench.txt
//
// A zero-alloc baseline row is strict (any allocation regresses it);
// nonzero rows get -slack percent of headroom. -gate restricts the
// diff to benchmark names matching a regexp.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line. Name keeps the full sub-bench
// path including the trailing -GOMAXPROCS suffix, so runs at
// different -cpu settings stay distinct.
type Benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds every other (value, unit) pair on the line:
	// B/op and allocs/op from -benchmem, plus any b.ReportMetric
	// custom units.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Output is the artifact schema.
type Output struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write JSON here (default stdout)")
	require := flag.String("require", "", "comma-separated benchmark names that must be present (prefix match on the base name)")
	baseline := flag.String("baseline", "", "committed artifact to diff allocs/op against; any regression fails")
	gate := flag.String("gate", "", "regexp selecting which benchmarks the -baseline diff gates (default: all)")
	slack := flag.Float64("slack", 0, "percent allocs/op headroom for nonzero-baseline rows (zero-alloc rows are always strict)")
	flag.Parse()
	if flag.NArg() > 0 {
		log.Fatalf("benchjson: unexpected arguments %q", flag.Args())
	}

	parsed, err := parse(os.Stdin)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if err := validate(parsed, splitRequire(*require)); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if *baseline != "" {
		base, err := loadBaseline(*baseline)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		report, err := diffAllocs(parsed, base, *gate, *slack)
		for _, line := range report {
			fmt.Fprintln(os.Stderr, "benchjson: "+line)
		}
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
	}

	data, err := json.MarshalIndent(parsed, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(parsed.Benchmarks), *out)
}

// loadBaseline reads a committed benchjson artifact.
func loadBaseline(path string) (*Output, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out Output
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &out, nil
}

// diffAllocs compares allocs/op against the baseline for every
// benchmark whose name matches gate (all when gate is empty).
// Benchmarks absent from the baseline are reported but pass (the
// baseline learns them on its next refresh). A zero-alloc baseline row
// is a hard contract: any allocation is a regression regardless of
// slack. Nonzero rows get slack percent of headroom, absorbing
// pool-warmup jitter without letting steady leaks through. The
// returned report always describes every comparison; err is non-nil if
// any row regressed.
func diffAllocs(got, base *Output, gate string, slack float64) ([]string, error) {
	var gateRE *regexp.Regexp
	if gate != "" {
		re, err := regexp.Compile(gate)
		if err != nil {
			return nil, fmt.Errorf("bad -gate regexp: %w", err)
		}
		gateRE = re
	}
	baseBy := make(map[string]Benchmark, len(base.Benchmarks))
	for _, b := range base.Benchmarks {
		baseBy[b.Name] = b
	}
	var report []string
	var regressed []string
	for _, b := range got.Benchmarks {
		if gateRE != nil && !gateRE.MatchString(b.Name) {
			continue
		}
		old, ok := baseBy[b.Name]
		if !ok {
			report = append(report, fmt.Sprintf("%s: not in baseline (new benchmark, passes)", b.Name))
			continue
		}
		oldAllocs, okOld := old.Metrics["allocs/op"]
		newAllocs, okNew := b.Metrics["allocs/op"]
		if !okOld || !okNew {
			return report, fmt.Errorf("%s: allocs/op missing (run benchmarks with -benchmem)", b.Name)
		}
		limit := oldAllocs * (1 + slack/100)
		status := "ok"
		if newAllocs > limit {
			status = "REGRESSED"
			regressed = append(regressed, b.Name)
		}
		report = append(report, fmt.Sprintf("%s: allocs/op %g -> %g (limit %g) %s",
			b.Name, oldAllocs, newAllocs, limit, status))
	}
	if len(regressed) > 0 {
		return report, fmt.Errorf("allocs/op regressed vs baseline: %s", strings.Join(regressed, ", "))
	}
	return report, nil
}

func splitRequire(spec string) []string {
	var names []string
	for _, n := range strings.Split(spec, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// parse consumes go test -bench output, collecting header keys and
// benchmark result lines; everything else (PASS, ok, test logs) is
// ignored.
func parse(r io.Reader) (*Output, error) {
	out := &Output{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			out.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseLine(line)
			if err != nil {
				return nil, fmt.Errorf("line %q: %w", line, err)
			}
			if ok {
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLine decodes one result line:
//
//	BenchmarkFoo/sub-8   12345   97.3 ns/op   16 B/op   2 allocs/op
//
// ok is false for Benchmark lines that are not results (a bare name
// is printed before its measurements when -v interleaves output).
func parseLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("bad value %q: %w", fields[i], err)
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = val
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = val
	}
	return b, true, nil
}

// validate enforces the artifact contract: at least one benchmark,
// ns/op on every line, and every required name present. Required
// names match the base benchmark (the path component before any /sub
// or -GOMAXPROCS suffix), so "BenchmarkCacheLookup" covers all its
// sub-benchmarks.
func validate(out *Output, required []string) error {
	if len(out.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark results found in input")
	}
	seen := make(map[string]bool)
	for _, b := range out.Benchmarks {
		if b.NsPerOp <= 0 {
			return fmt.Errorf("%s: missing ns/op measurement", b.Name)
		}
		base, _, _ := strings.Cut(b.Name, "/")
		base, _, _ = strings.Cut(base, "-")
		seen[base] = true
	}
	for _, want := range required {
		if !seen[want] {
			return fmt.Errorf("required benchmark %s not present", want)
		}
	}
	return nil
}
