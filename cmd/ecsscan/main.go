// Command ecsscan probes a DNS resolver over real sockets for its ECS
// behavior, a single-target version of the paper's §6.3 methodology: it
// checks EDNS/ECS support, whether client-supplied prefixes are
// accepted or overridden, which source prefix lengths come back, and —
// when pointed at a cooperating authority like cmd/authdns — whether
// the resolver honors ECS scopes in its cache.
//
// Usage:
//
//	ecsscan [-resolver 127.0.0.1:5301] [-name test.scan.example.org] \
//	        [-prefix 198.51.100.0/24]
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"

	"ecsdns/internal/dnsclient"
	"ecsdns/internal/dnswire"
	"ecsdns/internal/ecsopt"
)

func main() {
	target := flag.String("resolver", "127.0.0.1:5301", "resolver to probe (host:port)")
	nameStr := flag.String("name", "test.scan.example.org", "base hostname to query (unique labels are prepended per trial)")
	prefixStr := flag.String("prefix", "198.51.100.0/24", "client subnet to inject")
	flag.Parse()

	base, err := dnswire.ParseName(*nameStr)
	if err != nil {
		log.Fatalf("ecsscan: bad name: %v", err)
	}
	prefix, err := netip.ParsePrefix(*prefixStr)
	if err != nil {
		log.Fatalf("ecsscan: bad prefix: %v", err)
	}
	client := &dnsclient.Client{}
	trial := 0
	uniq := func() dnswire.Name {
		trial++
		n, err := base.Prepend(fmt.Sprintf("probe%d", os.Getpid()%10000+trial))
		if err != nil {
			log.Fatal(err)
		}
		return n
	}

	// Trial 1: plain query — is the resolver answering at all?
	name := uniq()
	resp, err := client.Query(*target, name, dnswire.TypeA, nil)
	if err != nil {
		log.Fatalf("ecsscan: resolver unreachable: %v", err)
	}
	fmt.Printf("plain query: rcode=%s answers=%d edns=%v\n",
		resp.RCode, len(resp.Answers), resp.EDNS != nil)

	// Trial 2: ECS query — does an option come back, and at what scope?
	cs := ecsopt.MustNew(prefix.Addr(), prefix.Bits())
	name = uniq()
	resp, err = client.Query(*target, name, dnswire.TypeA, &cs)
	if err != nil {
		log.Fatalf("ecsscan: ECS query failed: %v", err)
	}
	got, ok := dnsclient.ECSFromResponse(resp)
	if !ok {
		fmt.Println("ECS query: no ECS option in response — resolver path does not speak ECS")
		return
	}
	fmt.Printf("ECS query: echoed %s (scope %d)\n", got, got.ScopePrefix)
	switch {
	case got.Addr == cs.Addr && got.SourcePrefix == cs.SourcePrefix:
		fmt.Println("  resolver path accepted the injected prefix (technique-1 capable)")
	case got.SourcePrefix == cs.SourcePrefix:
		fmt.Println("  prefix length preserved but address rewritten (sender-derived)")
	default:
		fmt.Printf("  prefix transformed to /%d — truncation or capping in the path\n", got.SourcePrefix)
	}

	// Trial 3: cache-scope check — same name, sibling /24 in the same
	// /16. A second cache miss (observable as a fresh upstream answer
	// only at the authority) cannot be seen from here, but a compliant
	// resolver at least returns a scope consistent with the first
	// answer.
	sibling := prefix.Addr().As4()
	sibling[2] ^= 0x01
	cs2 := ecsopt.MustNew(netip.AddrFrom4(sibling), prefix.Bits())
	resp, err = client.Query(*target, name, dnswire.TypeA, &cs2)
	if err != nil {
		log.Fatalf("ecsscan: second ECS query failed: %v", err)
	}
	got2, ok2 := dnsclient.ECSFromResponse(resp)
	fmt.Printf("sibling-/24 query: ecs=%v", ok2)
	if ok2 {
		fmt.Printf(" echoed %s (scope %d)", got2, got2.ScopePrefix)
	}
	fmt.Println()
	if ok && ok2 && got.ScopePrefix >= 24 && got2.Addr == got.Addr {
		fmt.Println("  WARNING: same scoped answer served across /24s — scope possibly ignored")
	}
}
