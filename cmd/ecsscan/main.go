// Command ecsscan probes DNS resolvers over real sockets for their ECS
// behavior. Pointed at a single resolver (the default), it runs the
// paper's §6.3 methodology: it checks EDNS/ECS support, whether
// client-supplied prefixes are accepted or overridden, which source
// prefix lengths come back, and — when pointed at a cooperating
// authority like cmd/authdns — whether the resolver honors ECS scopes in
// its cache.
//
// With -targets it instead runs a bulk availability sweep over many
// resolvers through the concurrent scan engine: a pipelined UDP
// transport multiplexes queries over shared sockets, a worker pool keeps
// -concurrency probes in flight, and -rate caps the aggregate query
// rate.
//
// Usage:
//
//	ecsscan [-resolver 127.0.0.1:5301] [-name test.scan.example.org] \
//	        [-prefix 198.51.100.0/24] [-timeout 3s]
//	ecsscan -targets targets.txt [-concurrency 64] [-rate 1000] [-timeout 3s]
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"time"

	"ecsdns/internal/dnsclient"
	"ecsdns/internal/dnswire"
	"ecsdns/internal/ecsopt"
	"ecsdns/internal/scanner"
)

func main() {
	target := flag.String("resolver", "127.0.0.1:5301", "resolver to probe (host:port)")
	nameStr := flag.String("name", "test.scan.example.org", "base hostname to query (unique labels are prepended per trial)")
	prefixStr := flag.String("prefix", "198.51.100.0/24", "client subnet to inject")
	timeout := flag.Duration("timeout", 3*time.Second, "per-attempt query timeout")
	targetsArg := flag.String("targets", "", "bulk mode: file of resolver host:port lines (or a comma-separated list)")
	concurrency := flag.Int("concurrency", 64, "bulk mode: probes in flight")
	rate := flag.Float64("rate", 0, "bulk mode: max queries/sec (0 = unlimited)")
	shards := flag.Int("shards", 0, "bulk mode: pipeline shards, each with its own socket and ID space (0 = one per CPU)")
	batch := flag.Bool("batch", false, "bulk mode: coalesce sends/receives into sendmmsg/recvmmsg batches (linux)")
	flag.Parse()

	if flag.NArg() > 0 {
		log.Fatalf("ecsscan: unexpected arguments %q (targets go in -targets)", flag.Args())
	}
	if *timeout <= 0 {
		log.Fatalf("ecsscan: -timeout must be positive, got %v", *timeout)
	}
	if *concurrency <= 0 {
		log.Fatalf("ecsscan: -concurrency must be positive, got %d", *concurrency)
	}
	if *rate < 0 {
		log.Fatalf("ecsscan: -rate must be >= 0, got %v", *rate)
	}
	base, err := dnswire.ParseName(*nameStr)
	if err != nil {
		log.Fatalf("ecsscan: bad name: %v", err)
	}

	if *shards < 0 {
		log.Fatalf("ecsscan: -shards must be >= 0, got %d", *shards)
	}
	if *targetsArg != "" {
		bulkScan(*targetsArg, base, *concurrency, *rate, *timeout, *shards, *batch)
		return
	}

	prefix, err := netip.ParsePrefix(*prefixStr)
	if err != nil {
		log.Fatalf("ecsscan: bad prefix: %v", err)
	}
	singleProbe(*target, base, prefix, *timeout)
}

// loadTargets reads host:port targets from a file (one per line, #
// comments allowed) or from a comma-separated literal list.
func loadTargets(arg string) []string {
	var raw []string
	if f, err := os.Open(arg); err == nil {
		defer f.Close()
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			raw = append(raw, sc.Text())
		}
		if err := sc.Err(); err != nil {
			log.Fatalf("ecsscan: reading %s: %v", arg, err)
		}
	} else if strings.ContainsAny(arg, "/\\") {
		// A path that does not open is a typo, not a hostname list.
		log.Fatalf("ecsscan: %v", err)
	} else {
		raw = strings.Split(arg, ",")
	}
	var targets []string
	for _, line := range raw {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !strings.Contains(line, ":") {
			line += ":53"
		}
		targets = append(targets, line)
	}
	if len(targets) == 0 {
		log.Fatal("ecsscan: no targets")
	}
	return targets
}

// bulkScan sweeps many resolvers concurrently through the pipelined
// transport and prints one availability line per target plus a
// throughput summary.
func bulkScan(targetsArg string, base dnswire.Name, concurrency int, rate float64, timeout time.Duration, shards int, batch bool) {
	targets := loadTargets(targetsArg)
	pipe, err := dnsclient.NewPipeline(dnsclient.PipelineConfig{
		Shards:  shards, // 0 = one per CPU
		Batch:   batch,
		Timeout: timeout,
	})
	if err != nil {
		log.Fatalf("ecsscan: pipeline: %v", err)
	}
	defer pipe.Close()

	// First SIGINT drains the engine gracefully (in-flight probes finish,
	// partial results are still flushed below); a second forces exit.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	defer signal.Stop(sig)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "ecsscan: interrupt — draining in-flight probes (interrupt again to force exit)")
		cancel()
		<-sig
		fmt.Fprintln(os.Stderr, "ecsscan: forced exit")
		os.Exit(130)
	}()

	prog := scanner.NewProgress()
	eng := &scanner.Engine{Concurrency: concurrency, Rate: rate, Progress: prog}
	results := make([]string, len(targets))
	err = eng.Run(ctx, len(targets), func(ctx context.Context, i int) error {
		name, err := base.Prepend(fmt.Sprintf("bulk%d", i))
		if err != nil {
			results[i] = fmt.Sprintf("%-24s bad probe name: %v", targets[i], err)
			return err
		}
		q := dnswire.NewQuery(0, name, dnswire.TypeA) // the pipeline owns IDs
		q.EDNS = dnswire.NewEDNS()
		start := time.Now() //ecslint:ignore wallclock measures real probe RTT
		resp, err := pipe.Exchange(ctx, targets[i], q)
		if err != nil {
			results[i] = fmt.Sprintf("%-24s unreachable: %v", targets[i], err)
			return err
		}
		results[i] = fmt.Sprintf("%-24s rcode=%s answers=%d edns=%v rtt=%s",
			targets[i], resp.RCode, len(resp.Answers), resp.EDNS != nil,
			time.Since(start).Round(time.Millisecond))
		return nil
	})
	interrupted := err != nil && ctx.Err() != nil
	if err != nil && !interrupted {
		log.Fatalf("ecsscan: %v", err)
	}
	flushed := 0
	for _, line := range results {
		if line == "" {
			continue // probe never started before the drain
		}
		fmt.Println(line)
		flushed++
	}
	s := prog.Snapshot()
	st := pipe.Stats()
	fmt.Printf("\n%d targets: %d responding, %d unreachable in %s (%.0f q/s; %d udp sent, %d retries, %d tcp fallbacks)\n",
		len(targets), s.Done, s.Errors, s.Elapsed.Round(time.Millisecond), s.QPS,
		st.Sent, st.Retries, st.TCPFallbacks)
	if interrupted {
		fmt.Printf("interrupted: partial results for %d of %d targets\n", flushed, len(targets))
	}
}

// singleProbe is the original single-target §6.3 trial sequence.
func singleProbe(target string, base dnswire.Name, prefix netip.Prefix, timeout time.Duration) {
	client := &dnsclient.Client{Timeout: timeout}
	trial := 0
	uniq := func() dnswire.Name {
		trial++
		n, err := base.Prepend(fmt.Sprintf("probe%d", os.Getpid()%10000+trial))
		if err != nil {
			log.Fatal(err)
		}
		return n
	}

	// Trial 1: plain query — is the resolver answering at all?
	name := uniq()
	resp, err := client.Query(target, name, dnswire.TypeA, nil)
	if err != nil {
		log.Fatalf("ecsscan: resolver unreachable: %v", err)
	}
	fmt.Printf("plain query: rcode=%s answers=%d edns=%v\n",
		resp.RCode, len(resp.Answers), resp.EDNS != nil)

	// Trial 2: ECS query — does an option come back, and at what scope?
	cs := ecsopt.MustNew(prefix.Addr(), prefix.Bits())
	name = uniq()
	resp, err = client.Query(target, name, dnswire.TypeA, &cs)
	if err != nil {
		log.Fatalf("ecsscan: ECS query failed: %v", err)
	}
	got, ok := dnsclient.ECSFromResponse(resp)
	if !ok {
		fmt.Println("ECS query: no ECS option in response — resolver path does not speak ECS")
		return
	}
	fmt.Printf("ECS query: echoed %s (scope %d)\n", got, got.ScopePrefix)
	switch {
	case got.Addr == cs.Addr && got.SourcePrefix == cs.SourcePrefix:
		fmt.Println("  resolver path accepted the injected prefix (technique-1 capable)")
	case got.SourcePrefix == cs.SourcePrefix:
		fmt.Println("  prefix length preserved but address rewritten (sender-derived)")
	default:
		fmt.Printf("  prefix transformed to /%d — truncation or capping in the path\n", got.SourcePrefix)
	}

	// Trial 3: cache-scope check — same name, sibling /24 in the same
	// /16. A second cache miss (observable as a fresh upstream answer
	// only at the authority) cannot be seen from here, but a compliant
	// resolver at least returns a scope consistent with the first
	// answer.
	sibling := prefix.Addr().As4()
	sibling[2] ^= 0x01
	cs2 := ecsopt.MustNew(netip.AddrFrom4(sibling), prefix.Bits())
	resp, err = client.Query(target, name, dnswire.TypeA, &cs2)
	if err != nil {
		log.Fatalf("ecsscan: second ECS query failed: %v", err)
	}
	got2, ok2 := dnsclient.ECSFromResponse(resp)
	fmt.Printf("sibling-/24 query: ecs=%v", ok2)
	if ok2 {
		fmt.Printf(" echoed %s (scope %d)", got2, got2.ScopePrefix)
	}
	fmt.Println()
	if ok && ok2 && got.ScopePrefix >= 24 && got2.Addr == got.Addr {
		fmt.Println("  WARNING: same scoped answer served across /24s — scope possibly ignored")
	}
}
