// Command ecslab runs the paper-reproduction experiments: one per table,
// figure, and quantitative section finding of "A Look at the ECS
// Behavior of DNS Resolvers" (IMC 2019).
//
// Usage:
//
//	ecslab [-scale 0.1] [-seed 1] [-faults spec] <experiment-id>... | all | list
//
// Experiment ids: table1 table2 fig1..fig8 section5 section6_1
// section6_3.
package main

import (
	"flag"
	"fmt"
	"os"

	"ecsdns"
	"ecsdns/internal/netem"
)

func main() {
	scale := flag.Float64("scale", 0.1, "population/volume scale relative to the paper's datasets")
	seed := flag.Int64("seed", 1, "random seed (same seed ⇒ identical reports)")
	faults := flag.String("faults", "", `fault-injection spec applied to the study network, e.g. "loss=0.05,latency=20ms,servfail=0.1" (see netem.ParseFaultPlan)`)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ecslab [flags] <experiment>... | all | list\n\nexperiments:\n")
		for _, id := range ecsdns.Experiments() {
			fmt.Fprintf(os.Stderr, "  %s\n", id)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *scale <= 0 {
		fmt.Fprintf(os.Stderr, "ecslab: -scale must be positive, got %v\n", *scale)
		os.Exit(2)
	}
	if _, err := netem.ParseFaultPlan(*faults); err != nil {
		fmt.Fprintf(os.Stderr, "ecslab: -faults: %v\n", err)
		os.Exit(2)
	}
	cfg := ecsdns.Config{Scale: *scale, Seed: *seed, Faults: *faults}

	args := flag.Args()
	if len(args) == 1 && args[0] == "list" {
		for _, id := range ecsdns.Experiments() {
			fmt.Println(id)
		}
		return
	}
	if len(args) == 1 && args[0] == "all" {
		args = ecsdns.Experiments()
	}
	failed := false
	for _, id := range args {
		rep, err := ecsdns.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ecslab: %s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(rep)
	}
	if failed {
		os.Exit(1)
	}
}
