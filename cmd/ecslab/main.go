// Command ecslab runs the paper-reproduction experiments: one per table,
// figure, and quantitative section finding of "A Look at the ECS
// Behavior of DNS Resolvers" (IMC 2019).
//
// Usage:
//
//	ecslab [-scale 0.1] [-seed 1] [-faults spec] <experiment-id>... | all | list
//
// Experiment ids: table1 table2 fig1..fig8 section5 section6_1
// section6_3.
package main

import (
	"flag"
	"fmt"
	"os"

	"ecsdns"
	"ecsdns/internal/netem"
	"ecsdns/internal/upstreams"
)

func main() {
	scale := flag.Float64("scale", 0.1, "population/volume scale relative to the paper's datasets")
	seed := flag.Int64("seed", 1, "random seed (same seed ⇒ identical reports)")
	faults := flag.String("faults", "", `fault-injection spec applied to the study network, e.g. "loss=0.05,latency=20ms,servfail=0.1" (see netem.ParseFaultPlan)`)
	nUpstreams := flag.Int("upstreams", 0, "ext_resilience: authoritative mirrors behind the upstream pool (0 = 3)")
	hedge := flag.String("hedge", "", `ext_resilience: hedging spec, e.g. "off" or "p=0.95,min=10ms,max=2s" (empty = on)`)
	breaker := flag.String("breaker", "", `ext_resilience: circuit-breaker spec, e.g. "off" or "fails=5,open=30s,probes=2"`)
	ladder := flag.String("edns-ladder", "", `ext_resilience: EDNS payload ladder spec, e.g. "off" or "4096,1232,decay=5m"`)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ecslab [flags] <experiment>... | all | list\n\nexperiments:\n")
		for _, id := range ecsdns.Experiments() {
			fmt.Fprintf(os.Stderr, "  %s\n", id)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *scale <= 0 {
		fmt.Fprintf(os.Stderr, "ecslab: -scale must be positive, got %v\n", *scale)
		os.Exit(2)
	}
	if _, err := netem.ParseFaultPlan(*faults); err != nil {
		fmt.Fprintf(os.Stderr, "ecslab: -faults: %v\n", err)
		os.Exit(2)
	}
	if *nUpstreams < 0 || *nUpstreams == 1 {
		fmt.Fprintf(os.Stderr, "ecslab: -upstreams must be 0 (default) or >= 2, got %d\n", *nUpstreams)
		os.Exit(2)
	}
	if *hedge != "" {
		if _, err := upstreams.ParseHedge(*hedge); err != nil {
			fmt.Fprintf(os.Stderr, "ecslab: -hedge: %v\n", err)
			os.Exit(2)
		}
	}
	if _, err := upstreams.ParseBreaker(*breaker); err != nil {
		fmt.Fprintf(os.Stderr, "ecslab: -breaker: %v\n", err)
		os.Exit(2)
	}
	if _, err := upstreams.ParseLadder(*ladder); err != nil {
		fmt.Fprintf(os.Stderr, "ecslab: -edns-ladder: %v\n", err)
		os.Exit(2)
	}
	cfg := ecsdns.Config{
		Scale: *scale, Seed: *seed, Faults: *faults,
		Upstreams: *nUpstreams, Hedge: *hedge, Breaker: *breaker, Ladder: *ladder,
	}

	args := flag.Args()
	if len(args) == 1 && args[0] == "list" {
		for _, id := range ecsdns.Experiments() {
			fmt.Println(id)
		}
		return
	}
	if len(args) == 1 && args[0] == "all" {
		args = ecsdns.Experiments()
	}
	failed := false
	for _, id := range args {
		rep, err := ecsdns.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ecslab: %s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Println(rep)
	}
	if failed {
		os.Exit(1)
	}
}
