// Command recursor runs the module's ECS recursive resolver on real
// UDP+TCP sockets with a selectable behavior profile, forwarding cache
// misses to a configured authoritative server. Pointing it at authdns
// gives a two-process, real-socket replica of the paper's measurement
// setup.
//
// Usage:
//
//	recursor [-listen 127.0.0.1:5301] [-zone scan.example.org] \
//	         [-upstream 127.0.0.1:5300] [-profile compliant] \
//	         [-cache-entries 100000] [-cache-shards 8] \
//	         [-negative-ttl 30s] [-min-ttl 0] [-max-ttl 0] [-no-coalesce]
//
// With -upstreams, cache misses go through the resilient upstream
// pool instead of the single -upstream socket: health-gated failover
// across the listed servers, optional request hedging (-hedge),
// per-upstream circuit breakers (-breaker), and the adaptive EDNS
// payload ladder (-edns-ladder) that steps 4096 → 1232 → TCP on
// truncation.
//
// Profiles: compliant, google, jammed, ignore-scope, cap22,
// long-prefix, private-prefix, loopback-prober, none.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ecsdns/internal/dnsclient"
	"ecsdns/internal/dnsserver"
	"ecsdns/internal/dnswire"
	"ecsdns/internal/resolver"
	"ecsdns/internal/upstreams"
)

// socketTransport adapts the stub client to the resolver's Transport
// interface, mapping simulation addresses to the single configured
// upstream socket.
type socketTransport struct {
	client   *dnsclient.Client
	upstream string
}

func (t *socketTransport) Exchange(_, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	start := time.Now() //ecslint:ignore wallclock measures real upstream RTT
	resp, err := t.client.Exchange(t.upstream, q)
	return resp, time.Since(start), err
}

// poolTransport adapts the upstream pool's exchange primitives onto
// real sockets: each synthetic pool address maps to one configured
// host:port. UDP attempts are single-shot with no client-side retries
// or fallback — the pool's ladder owns transport escalation — and TCP
// goes straight to a framed connection.
type poolTransport struct {
	udp     *dnsclient.Client
	tcp     *dnsclient.Client
	targets map[netip.Addr]string
}

func (t *poolTransport) Exchange(_, to netip.Addr, q *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	server, ok := t.targets[to]
	if !ok {
		return nil, 0, fmt.Errorf("recursor: no socket for pool address %v", to)
	}
	start := time.Now() //ecslint:ignore wallclock measures real upstream RTT
	resp, err := t.udp.ExchangeUDP(server, q)
	return resp, time.Since(start), err
}

func (t *poolTransport) ExchangeTCP(_, to netip.Addr, q *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	server, ok := t.targets[to]
	if !ok {
		return nil, 0, fmt.Errorf("recursor: no socket for pool address %v", to)
	}
	start := time.Now() //ecslint:ignore wallclock measures real upstream RTT
	resp, err := t.tcp.Exchange(server, q)
	return resp, time.Since(start), err
}

// parsePoolSpec parses "host:port[/priority[/weight]],..." into pool
// upstreams on synthetic 192.0.2.x addresses plus the socket map the
// poolTransport routes by.
func parsePoolSpec(spec string) ([]upstreams.Upstream, map[netip.Addr]string, error) {
	parts := strings.Split(spec, ",")
	if len(parts) > 254 {
		return nil, nil, fmt.Errorf("pool spec lists %d upstreams; max 254", len(parts))
	}
	targets := make(map[netip.Addr]string, len(parts))
	ups := make([]upstreams.Upstream, 0, len(parts))
	for i, part := range parts {
		part = strings.TrimSpace(part)
		fields := strings.Split(part, "/")
		if part == "" || len(fields) > 3 {
			return nil, nil, fmt.Errorf("bad pool upstream %q: want host:port[/priority[/weight]]", part)
		}
		if _, _, err := net.SplitHostPort(fields[0]); err != nil {
			return nil, nil, fmt.Errorf("bad pool upstream %q: %v", part, err)
		}
		u := upstreams.Upstream{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i + 1)})}
		if len(fields) > 1 {
			p, err := strconv.Atoi(fields[1])
			if err != nil || p < 0 {
				return nil, nil, fmt.Errorf("bad priority in pool upstream %q", part)
			}
			u.Priority = p
		}
		if len(fields) > 2 {
			wt, err := strconv.Atoi(fields[2])
			if err != nil || wt < 1 {
				return nil, nil, fmt.Errorf("bad weight in pool upstream %q", part)
			}
			u.Weight = wt
		}
		targets[u.Addr] = fields[0]
		ups = append(ups, u)
	}
	return ups, targets, nil
}

func main() {
	listen := flag.String("listen", "127.0.0.1:5301", "UDP+TCP listen address")
	zoneName := flag.String("zone", "scan.example.org", "zone served by the upstream authority")
	upstream := flag.String("upstream", "127.0.0.1:5300", "authoritative server address")
	upstreamsSpec := flag.String("upstreams", "", "resilient upstream pool, host:port[/priority[/weight]] comma-separated (empty = single -upstream)")
	hedgeSpec := flag.String("hedge", "", "request hedging: off, on, or p=0.95,min=10ms,max=2s (requires -upstreams)")
	breakerSpec := flag.String("breaker", "", "circuit breaker: off or fails=5,open=30s,probes=2 (requires -upstreams)")
	ladderSpec := flag.String("edns-ladder", "", "EDNS payload ladder: off, or sizes like 4096,1232 with optional decay=5m (requires -upstreams)")
	profileName := flag.String("profile", "compliant", "ECS behavior profile")
	maxInflight := flag.Int("max-inflight", dnsserver.DefaultMaxInflight, "UDP queries handled concurrently (admission control)")
	maxConns := flag.Int("max-conns", dnsserver.DefaultMaxConns, "simultaneous TCP connections (-1 = unlimited)")
	overflow := flag.String("overflow", "drop", "admission overflow policy: drop or servfail")
	rrlSpec := flag.String("rrl", "", "response-rate limit, e.g. rate=20,burst=40,slip=2 (empty = off)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-drain budget on SIGTERM before force close")
	cacheEntries := flag.Int("cache-entries", 0, "cache capacity in entries, LRU-evicted over the bound (0 = unbounded)")
	cacheShards := flag.Int("cache-shards", 8, "independently locked cache shards (rounded up to a power of two)")
	negTTL := flag.Duration("negative-ttl", 0, "cap on cached negative-answer lifetime (0 = 30s default)")
	minTTL := flag.Duration("min-ttl", 0, "floor on cached positive-answer lifetime (0 = off)")
	maxTTL := flag.Duration("max-ttl", 0, "cap on every cached lifetime (0 = off)")
	noCoalesce := flag.Bool("no-coalesce", false, "disable singleflight deduplication of concurrent identical misses")
	flag.Parse()

	if flag.NArg() > 0 {
		log.Fatalf("recursor: unexpected arguments %q", flag.Args())
	}
	zone, err := dnswire.ParseName(*zoneName)
	if err != nil {
		log.Fatalf("recursor: bad zone: %v", err)
	}
	profile, err := profileByName(*profileName)
	if err != nil {
		log.Fatalf("recursor: %v", err)
	}
	if *maxInflight <= 0 {
		log.Fatalf("recursor: -max-inflight must be positive, got %d", *maxInflight)
	}
	if *maxConns == 0 || *maxConns < -1 {
		log.Fatalf("recursor: -max-conns must be positive or -1 (unlimited), got %d", *maxConns)
	}
	policy, err := parseOverflow(*overflow)
	if err != nil {
		log.Fatalf("recursor: %v", err)
	}
	rrl, err := dnsserver.ParseRRL(*rrlSpec)
	if err != nil {
		log.Fatalf("recursor: bad -rrl: %v", err)
	}
	if *drain <= 0 {
		log.Fatalf("recursor: -drain must be positive, got %v", *drain)
	}
	if *cacheEntries < 0 {
		log.Fatalf("recursor: -cache-entries must be non-negative, got %d", *cacheEntries)
	}
	if *cacheShards < 1 {
		log.Fatalf("recursor: -cache-shards must be positive, got %d", *cacheShards)
	}
	if *negTTL < 0 || *minTTL < 0 || *maxTTL < 0 {
		log.Fatal("recursor: TTL clamps must be non-negative")
	}

	// The directory routes the configured zone (and everything else) to
	// a placeholder address; the socket transport ignores it and talks
	// to the upstream socket.
	placeholder := netip.MustParseAddr("192.0.2.1")
	dir := resolver.NewDirectory()
	dir.Add(zone, placeholder)
	dir.Add(dnswire.Root, placeholder)

	host, _, err := net.SplitHostPort(*listen)
	if err != nil {
		log.Fatalf("recursor: bad listen address: %v", err)
	}
	selfAddr, err := netip.ParseAddr(host)
	if err != nil {
		log.Fatalf("recursor: bad listen host: %v", err)
	}

	resCfg := resolver.Config{
		Addr:              selfAddr,
		Now:               time.Now, //ecslint:ignore wallclock live server: cache ages on the real clock
		Directory:         dir,
		Profile:           profile,
		Seed:              time.Now().UnixNano(), //ecslint:ignore wallclock live server wants unpredictable IDs, not replay
		CacheEntries:      *cacheEntries,
		CacheShards:       *cacheShards,
		NegativeTTL:       *negTTL,
		MinTTL:            *minTTL,
		MaxTTL:            *maxTTL,
		DisableCoalescing: *noCoalesce,
	}
	var pool *upstreams.Pool
	if *upstreamsSpec != "" {
		ups, targets, err := parsePoolSpec(*upstreamsSpec)
		if err != nil {
			log.Fatalf("recursor: bad -upstreams: %v", err)
		}
		hedge, err := upstreams.ParseHedge(*hedgeSpec)
		if err != nil {
			log.Fatalf("recursor: bad -hedge: %v", err)
		}
		breaker, err := upstreams.ParseBreaker(*breakerSpec)
		if err != nil {
			log.Fatalf("recursor: bad -breaker: %v", err)
		}
		ladder, err := upstreams.ParseLadder(*ladderSpec)
		if err != nil {
			log.Fatalf("recursor: bad -edns-ladder: %v", err)
		}
		pool, err = upstreams.New(upstreams.Config{
			Upstreams: ups,
			Transport: &poolTransport{
				udp:     &dnsclient.Client{Retries: dnsclient.NoRetries},
				tcp:     &dnsclient.Client{ForceTCP: true},
				targets: targets,
			},
			Now:        time.Now, //ecslint:ignore wallclock live pool: health, breakers, and the ladder age on the real clock
			Hedge:      hedge,
			Breaker:    breaker,
			Ladder:     ladder,
			Concurrent: true,
			After:      time.After, //ecslint:ignore wallclock live hedge timer
		})
		if err != nil {
			log.Fatalf("recursor: pool: %v", err)
		}
		resCfg.Pool = pool
	} else {
		if *hedgeSpec != "" || *breakerSpec != "" || *ladderSpec != "" {
			log.Fatal("recursor: -hedge, -breaker, and -edns-ladder require -upstreams")
		}
		resCfg.Transport = &socketTransport{client: &dnsclient.Client{}, upstream: *upstream}
	}
	res := resolver.New(resCfg)

	srv := dnsserver.New(res)
	srv.MaxInflight = *maxInflight
	srv.MaxConns = *maxConns
	srv.Overflow = policy
	srv.RRL = rrl
	bound, err := srv.Start(*listen)
	if err != nil {
		log.Fatalf("recursor: %v", err)
	}
	if pool != nil {
		log.Printf("recursor: %s profile on %s, pool of %d upstreams [%s]", *profileName, bound, strings.Count(*upstreamsSpec, ",")+1, *upstreamsSpec)
	} else {
		log.Printf("recursor: %s profile on %s, upstream %s", *profileName, bound, *upstream)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("recursor: shutting down (draining up to %v)", *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("recursor: drain incomplete, force-closed: %v", err)
	}
	client, up := res.Counters()
	log.Printf("recursor: served %d client queries, sent %d upstream", client, up)
	log.Printf("recursor: %s", srv.Stats())
	log.Printf("recursor: cache %s", res.Cache().Stats())
	if pool != nil {
		pool.Wait()
		c := pool.Counters()
		log.Printf("recursor: pool issued=%d won=%d lost=%d cancelled=%d failed=%d picks=%d granted=%d refused=%d balanced=%v",
			c.Issued, c.Won, c.Lost, c.Cancelled, c.Failed, c.Picks, c.Granted, c.Refused, c.Balanced())
		log.Printf("recursor: pool hedges=%d failovers=%d breaker-trips=%d ladder-steps=%d tcp-fallbacks=%d fast-fails=%d",
			c.Hedges, c.Failovers, c.BreakerTrips, c.LadderSteps, c.TCPFallbacks, c.FastFails)
	}
}

func parseOverflow(spec string) (dnsserver.OverflowPolicy, error) {
	switch spec {
	case "drop":
		return dnsserver.OverflowDrop, nil
	case "servfail":
		return dnsserver.OverflowServFail, nil
	}
	return 0, fmt.Errorf("bad -overflow %q (want drop or servfail)", spec)
}

func profileByName(name string) (resolver.Profile, error) {
	switch name {
	case "compliant":
		return resolver.CompliantProfile(), nil
	case "google":
		return resolver.GoogleLikeProfile(), nil
	case "jammed":
		return resolver.JammedProfile(), nil
	case "ignore-scope":
		return resolver.IgnoreScopeProfile(), nil
	case "cap22":
		return resolver.Cap22Profile(), nil
	case "long-prefix":
		return resolver.LongPrefixProfile(), nil
	case "private-prefix":
		return resolver.PrivatePrefixProfile(), nil
	case "loopback-prober":
		return resolver.LoopbackProberProfile(), nil
	case "none":
		return resolver.NonECSProfile(), nil
	}
	return resolver.Profile{}, fmt.Errorf("unknown profile %q", name)
}
