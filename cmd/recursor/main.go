// Command recursor runs the module's ECS recursive resolver on real
// UDP+TCP sockets with a selectable behavior profile, forwarding cache
// misses to a configured authoritative server. Pointing it at authdns
// gives a two-process, real-socket replica of the paper's measurement
// setup.
//
// Usage:
//
//	recursor [-listen 127.0.0.1:5301] [-zone scan.example.org] \
//	         [-upstream 127.0.0.1:5300] [-profile compliant]
//
// Profiles: compliant, google, jammed, ignore-scope, cap22,
// long-prefix, private-prefix, loopback-prober, none.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ecsdns/internal/dnsclient"
	"ecsdns/internal/dnsserver"
	"ecsdns/internal/dnswire"
	"ecsdns/internal/resolver"
)

// socketTransport adapts the stub client to the resolver's Transport
// interface, mapping simulation addresses to the single configured
// upstream socket.
type socketTransport struct {
	client   *dnsclient.Client
	upstream string
}

func (t *socketTransport) Exchange(_, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	start := time.Now() //ecslint:ignore wallclock measures real upstream RTT
	resp, err := t.client.Exchange(t.upstream, q)
	return resp, time.Since(start), err
}

func main() {
	listen := flag.String("listen", "127.0.0.1:5301", "UDP+TCP listen address")
	zoneName := flag.String("zone", "scan.example.org", "zone served by the upstream authority")
	upstream := flag.String("upstream", "127.0.0.1:5300", "authoritative server address")
	profileName := flag.String("profile", "compliant", "ECS behavior profile")
	flag.Parse()

	if flag.NArg() > 0 {
		log.Fatalf("recursor: unexpected arguments %q", flag.Args())
	}
	zone, err := dnswire.ParseName(*zoneName)
	if err != nil {
		log.Fatalf("recursor: bad zone: %v", err)
	}
	profile, err := profileByName(*profileName)
	if err != nil {
		log.Fatalf("recursor: %v", err)
	}

	// The directory routes the configured zone (and everything else) to
	// a placeholder address; the socket transport ignores it and talks
	// to the upstream socket.
	placeholder := netip.MustParseAddr("192.0.2.1")
	dir := resolver.NewDirectory()
	dir.Add(zone, placeholder)
	dir.Add(dnswire.Root, placeholder)

	host, _, err := net.SplitHostPort(*listen)
	if err != nil {
		log.Fatalf("recursor: bad listen address: %v", err)
	}
	selfAddr, err := netip.ParseAddr(host)
	if err != nil {
		log.Fatalf("recursor: bad listen host: %v", err)
	}

	res := resolver.New(resolver.Config{
		Addr:      selfAddr,
		Transport: &socketTransport{client: &dnsclient.Client{}, upstream: *upstream},
		Now:       time.Now, //ecslint:ignore wallclock live server: cache ages on the real clock
		Directory: dir,
		Profile:   profile,
		Seed:      time.Now().UnixNano(), //ecslint:ignore wallclock live server wants unpredictable IDs, not replay
	})

	srv := dnsserver.New(res)
	bound, err := srv.Start(*listen)
	if err != nil {
		log.Fatalf("recursor: %v", err)
	}
	log.Printf("recursor: %s profile on %s, upstream %s", *profileName, bound, *upstream)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	client, up := res.Counters()
	log.Printf("recursor: served %d client queries, sent %d upstream", client, up)
	srv.Close()
}

func profileByName(name string) (resolver.Profile, error) {
	switch name {
	case "compliant":
		return resolver.CompliantProfile(), nil
	case "google":
		return resolver.GoogleLikeProfile(), nil
	case "jammed":
		return resolver.JammedProfile(), nil
	case "ignore-scope":
		return resolver.IgnoreScopeProfile(), nil
	case "cap22":
		return resolver.Cap22Profile(), nil
	case "long-prefix":
		return resolver.LongPrefixProfile(), nil
	case "private-prefix":
		return resolver.PrivatePrefixProfile(), nil
	case "loopback-prober":
		return resolver.LoopbackProberProfile(), nil
	case "none":
		return resolver.NonECSProfile(), nil
	}
	return resolver.Profile{}, fmt.Errorf("unknown profile %q", name)
}
