// Command authdns runs the paper's experimental authoritative
// nameserver on real UDP+TCP sockets: it serves a wildcard zone,
// answers ECS queries with a configurable scope policy (the paper used
// scope = source − 4 for its scan), and logs every query's ECS
// parameters to stdout — the raw material of the passive datasets.
//
// Usage:
//
//	authdns [-listen 127.0.0.1:5300] [-zone scan.example.org] \
//	        [-answer 192.0.2.53] [-ttl 30] [-scope source-4|echo|N] \
//	        [-zonefile db.example]
//
// Try it with cmd/ecsscan or dig:
//
//	dig @127.0.0.1 -p 5300 +subnet=203.0.113.0/24 test.scan.example.org
package main

import (
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ecsdns/internal/authority"
	"ecsdns/internal/dnsserver"
	"ecsdns/internal/dnswire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5300", "UDP+TCP listen address")
	zoneName := flag.String("zone", "scan.example.org", "zone to serve (wildcard A for all names)")
	zoneFile := flag.String("zonefile", "", "serve records from an RFC 1035 master file instead of the wildcard zone")
	answer := flag.String("answer", "192.0.2.53", "wildcard A answer")
	ttl := flag.Uint("ttl", 30, "answer TTL in seconds")
	scopeSpec := flag.String("scope", "source-4", "ECS scope policy: source-4, echo, or a fixed number")
	quiet := flag.Bool("quiet", false, "suppress per-query logging")
	flag.Parse()

	if flag.NArg() > 0 {
		log.Fatalf("authdns: unexpected arguments %q", flag.Args())
	}
	origin, err := dnswire.ParseName(*zoneName)
	if err != nil {
		log.Fatalf("authdns: bad zone: %v", err)
	}
	addr, err := netip.ParseAddr(*answer)
	if err != nil {
		log.Fatalf("authdns: bad answer address: %v", err)
	}
	scope, err := parseScope(*scopeSpec)
	if err != nil {
		log.Fatalf("authdns: %v", err)
	}

	srv := authority.NewServer(authority.Config{
		ECSEnabled: true,
		Scope:      scope,
		Now:        time.Now, //ecslint:ignore wallclock live server: TTLs age on the real clock
	})
	var zone *authority.Zone
	if *zoneFile != "" {
		f, err := os.Open(*zoneFile)
		if err != nil {
			log.Fatalf("authdns: %v", err)
		}
		zone, err = authority.ParseZoneFile(f, origin)
		f.Close()
		if err != nil {
			log.Fatalf("authdns: %v", err)
		}
		origin = zone.Origin
	} else {
		zone = authority.NewZone(origin, uint32(*ttl))
		zone.SetWildcard(dnswire.TypeA, dnswire.ARData{Addr: addr})
		zone.MustAdd(dnswire.RR{Name: origin, Data: dnswire.NSRData{Host: mustPrepend(origin, "ns1")}})
	}
	srv.AddZone(zone)
	if !*quiet {
		srv.SetLog(func(r authority.LogRecord) {
			ecs := "-"
			if r.QueryHasECS {
				ecs = r.QueryECS.String()
			}
			fmt.Printf("%s resolver=%s q=%s/%s ecs=%s scope=%d rcode=%s\n",
				r.Time.Format(time.RFC3339), r.Resolver, r.Name, r.Type, ecs, r.RespScope, r.RCode)
		})
	}

	ds := dnsserver.New(srv)
	bound, err := ds.Start(*listen)
	if err != nil {
		log.Fatalf("authdns: %v", err)
	}
	log.Printf("authdns: serving %s on %s (udp+tcp), scope policy %s", origin, bound, *scopeSpec)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("authdns: shutting down")
	ds.Close()
}

func parseScope(spec string) (authority.ScopeFunc, error) {
	switch {
	case spec == "echo":
		return authority.ScopeEcho(), nil
	case strings.HasPrefix(spec, "source-"):
		d, err := strconv.Atoi(strings.TrimPrefix(spec, "source-"))
		if err != nil || d < 0 || d > 128 {
			return nil, fmt.Errorf("bad scope spec %q", spec)
		}
		return authority.ScopeSourceMinus(uint8(d)), nil
	default:
		n, err := strconv.Atoi(spec)
		if err != nil || n < 0 || n > 128 {
			return nil, fmt.Errorf("bad scope spec %q", spec)
		}
		return authority.ScopeFixed(uint8(n)), nil
	}
}

func mustPrepend(origin dnswire.Name, label string) dnswire.Name {
	n, err := origin.Prepend(label)
	if err != nil {
		log.Fatalf("authdns: %v", err)
	}
	return n
}
