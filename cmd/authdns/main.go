// Command authdns runs the paper's experimental authoritative
// nameserver on real UDP+TCP sockets: it serves a wildcard zone,
// answers ECS queries with a configurable scope policy (the paper used
// scope = source − 4 for its scan), and logs every query's ECS
// parameters to stdout — the raw material of the passive datasets.
//
// Usage:
//
//	authdns [-listen 127.0.0.1:5300] [-zone scan.example.org] \
//	        [-answer 192.0.2.53] [-ttl 30] [-scope source-4|echo|N] \
//	        [-zonefile db.example]
//
// Try it with cmd/ecsscan or dig:
//
//	dig @127.0.0.1 -p 5300 +subnet=203.0.113.0/24 test.scan.example.org
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ecsdns/internal/authority"
	"ecsdns/internal/dnsserver"
	"ecsdns/internal/dnswire"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:5300", "UDP+TCP listen address")
	zoneName := flag.String("zone", "scan.example.org", "zone to serve (wildcard A for all names)")
	zoneFile := flag.String("zonefile", "", "serve records from an RFC 1035 master file instead of the wildcard zone")
	answer := flag.String("answer", "192.0.2.53", "wildcard A answer")
	ttl := flag.Uint("ttl", 30, "answer TTL in seconds")
	scopeSpec := flag.String("scope", "source-4", "ECS scope policy: source-4, echo, or a fixed number")
	quiet := flag.Bool("quiet", false, "suppress per-query logging")
	maxInflight := flag.Int("max-inflight", dnsserver.DefaultMaxInflight, "UDP queries handled concurrently (admission control)")
	maxConns := flag.Int("max-conns", dnsserver.DefaultMaxConns, "simultaneous TCP connections (-1 = unlimited)")
	overflow := flag.String("overflow", "drop", "admission overflow policy: drop or servfail")
	rrlSpec := flag.String("rrl", "", "response-rate limit, e.g. rate=20,burst=40,slip=2 (empty = off)")
	drain := flag.Duration("drain", 5*time.Second, "graceful-drain budget on SIGTERM before force close")
	flag.Parse()

	if flag.NArg() > 0 {
		log.Fatalf("authdns: unexpected arguments %q", flag.Args())
	}
	origin, err := dnswire.ParseName(*zoneName)
	if err != nil {
		log.Fatalf("authdns: bad zone: %v", err)
	}
	addr, err := netip.ParseAddr(*answer)
	if err != nil {
		log.Fatalf("authdns: bad answer address: %v", err)
	}
	scope, err := parseScope(*scopeSpec)
	if err != nil {
		log.Fatalf("authdns: %v", err)
	}
	if *maxInflight <= 0 {
		log.Fatalf("authdns: -max-inflight must be positive, got %d", *maxInflight)
	}
	if *maxConns == 0 || *maxConns < -1 {
		log.Fatalf("authdns: -max-conns must be positive or -1 (unlimited), got %d", *maxConns)
	}
	policy, err := parseOverflow(*overflow)
	if err != nil {
		log.Fatalf("authdns: %v", err)
	}
	rrl, err := dnsserver.ParseRRL(*rrlSpec)
	if err != nil {
		log.Fatalf("authdns: bad -rrl: %v", err)
	}
	if *drain <= 0 {
		log.Fatalf("authdns: -drain must be positive, got %v", *drain)
	}

	srv := authority.NewServer(authority.Config{
		ECSEnabled: true,
		Scope:      scope,
		Now:        time.Now, //ecslint:ignore wallclock live server: TTLs age on the real clock
	})
	var zone *authority.Zone
	if *zoneFile != "" {
		f, err := os.Open(*zoneFile)
		if err != nil {
			log.Fatalf("authdns: %v", err)
		}
		zone, err = authority.ParseZoneFile(f, origin)
		f.Close()
		if err != nil {
			log.Fatalf("authdns: %v", err)
		}
		origin = zone.Origin
	} else {
		zone = authority.NewZone(origin, uint32(*ttl))
		zone.SetWildcard(dnswire.TypeA, &dnswire.ARData{Addr: addr})
		zone.MustAdd(dnswire.RR{Name: origin, Data: &dnswire.NSRData{Host: mustPrepend(origin, "ns1")}})
	}
	srv.AddZone(zone)
	if !*quiet {
		srv.SetLog(func(r authority.LogRecord) {
			ecs := "-"
			if r.QueryHasECS {
				ecs = r.QueryECS.String()
			}
			fmt.Printf("%s resolver=%s q=%s/%s ecs=%s scope=%d rcode=%s\n",
				r.Time.Format(time.RFC3339), r.Resolver, r.Name, r.Type, ecs, r.RespScope, r.RCode)
		})
	}

	ds := dnsserver.New(srv)
	ds.MaxInflight = *maxInflight
	ds.MaxConns = *maxConns
	ds.Overflow = policy
	ds.RRL = rrl
	bound, err := ds.Start(*listen)
	if err != nil {
		log.Fatalf("authdns: %v", err)
	}
	log.Printf("authdns: serving %s on %s (udp+tcp), scope policy %s", origin, bound, *scopeSpec)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("authdns: shutting down (draining up to %v)", *drain)
	ctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := ds.Shutdown(ctx); err != nil {
		log.Printf("authdns: drain incomplete, force-closed: %v", err)
	}
	log.Printf("authdns: %s", ds.Stats())
}

func parseOverflow(spec string) (dnsserver.OverflowPolicy, error) {
	switch spec {
	case "drop":
		return dnsserver.OverflowDrop, nil
	case "servfail":
		return dnsserver.OverflowServFail, nil
	}
	return 0, fmt.Errorf("bad -overflow %q (want drop or servfail)", spec)
}

func parseScope(spec string) (authority.ScopeFunc, error) {
	switch {
	case spec == "echo":
		return authority.ScopeEcho(), nil
	case strings.HasPrefix(spec, "source-"):
		d, err := strconv.Atoi(strings.TrimPrefix(spec, "source-"))
		if err != nil || d < 0 || d > 128 {
			return nil, fmt.Errorf("bad scope spec %q", spec)
		}
		return authority.ScopeSourceMinus(uint8(d)), nil
	default:
		n, err := strconv.Atoi(spec)
		if err != nil || n < 0 || n > 128 {
			return nil, fmt.Errorf("bad scope spec %q", spec)
		}
		return authority.ScopeFixed(uint8(n)), nil
	}
}

func mustPrepend(origin dnswire.Name, label string) dnswire.Name {
	n, err := origin.Prepend(label)
	if err != nil {
		log.Fatalf("authdns: %v", err)
	}
	return n
}
