// Command ecslint runs the project's static analyzer over the module.
//
//	go run ./cmd/ecslint ./...          # lint the whole module
//	go run ./cmd/ecslint -list          # show the registered checks
//	go run ./cmd/ecslint -disable mutexhold ./...
//	go run ./cmd/ecslint -json ./...    # machine-readable output
//	go run ./cmd/ecslint -sarif ./...   # SARIF 2.1.0 for code scanning
//
// Findings print one per line as `file:line: [check] message`, sorted,
// and any finding makes the exit status 1 (2 = usage or load failure).
// Suppress a single line with an annotated directive:
//
//	conn.SetDeadline(time.Now().Add(d)) //ecslint:ignore wallclock real socket deadline
//
// With -json, output is a single stable object listing both active and
// suppressed findings; suppressed entries carry "suppressed": true and
// the ignore directive's justification in "ignoredBy" (the schema lives
// in lint.JSONFinding). Only active findings affect the exit status.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ecsdns/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	fs := flag.NewFlagSet("ecslint", flag.ContinueOnError)
	fs.SetOutput(os.Stderr)
	list := fs.Bool("list", false, "list registered checks and exit")
	enable := fs.String("enable", "", "comma-separated checks to run (default: all)")
	disable := fs.String("disable", "", "comma-separated checks to skip")
	jsonOut := fs.Bool("json", false, "emit findings (active and suppressed) as JSON")
	sarifOut := fs.Bool("sarif", false, "emit findings (active and suppressed) as SARIF 2.1.0")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: ecslint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		return 2
	}
	if *list {
		for _, c := range lint.AllChecks() {
			fmt.Printf("%-16s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	cfg := lint.DefaultConfig()
	known := make(map[string]bool)
	for _, name := range lint.CheckNames() {
		known[name] = true
	}
	if *enable != "" {
		cfg.EnableAll = false
		cfg.Enabled = make(map[string]bool)
		for _, name := range strings.Split(*enable, ",") {
			if !known[name] {
				fmt.Fprintf(os.Stderr, "ecslint: unknown check %q (see -list)\n", name)
				return 2
			}
			cfg.Enabled[name] = true
		}
	}
	if *disable != "" {
		if cfg.Enabled == nil {
			cfg.Enabled = make(map[string]bool)
		}
		for _, name := range strings.Split(*disable, ",") {
			if !known[name] {
				fmt.Fprintf(os.Stderr, "ecslint: unknown check %q (see -list)\n", name)
				return 2
			}
			cfg.Enabled[name] = false
		}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecslint: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(cwd, fs.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecslint: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadAll()
	if err != nil {
		fmt.Fprintf(os.Stderr, "ecslint: %v\n", err)
		return 2
	}
	findings, suppressed := lint.RunAll(pkgs, cfg)
	if *sarifOut {
		out, err := lint.SARIF(findings, suppressed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ecslint: %v\n", err)
			return 2
		}
		os.Stdout.Write(out)
		fmt.Println()
		if len(findings) > 0 {
			return 1
		}
		return 0
	}
	if *jsonOut {
		out, err := lint.JSON(findings, suppressed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ecslint: %v\n", err)
			return 2
		}
		os.Stdout.Write(out)
		fmt.Println()
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "ecslint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		}
		return 1
	}
	return 0
}
