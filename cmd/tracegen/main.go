// Command tracegen generates the synthetic counterparts of the paper's
// resolver-side datasets and writes them as CSV, so the workloads behind
// Figures 1–3 can be inspected, shared, and replayed by external tools.
//
// Usage:
//
//	tracegen -dataset allnames  [-queries 280000] [-seed 1] > allnames.csv
//	tracegen -dataset publiccdn [-resolvers 300] [-seed 1] > publiccdn.csv
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"ecsdns/internal/traces"
)

func main() {
	dataset := flag.String("dataset", "allnames", "allnames (the 24 h busy-resolver trace) or publiccdn (the 3 h public-resolver/CDN trace)")
	seed := flag.Int64("seed", 1, "generator seed")
	queries := flag.Int("queries", 0, "allnames: total queries (0 = default)")
	resolvers := flag.Int("resolvers", 0, "publiccdn: number of egress resolvers (0 = default)")
	flag.Parse()

	if flag.NArg() > 0 {
		log.Fatalf("tracegen: unexpected arguments %q", flag.Args())
	}
	if *queries < 0 || *resolvers < 0 {
		log.Fatalf("tracegen: -queries and -resolvers must be >= 0")
	}

	out := bufio.NewWriter(os.Stdout)

	switch *dataset {
	case "allnames":
		cfg := traces.DefaultAllNames
		cfg.Seed = *seed
		if *queries > 0 {
			cfg.Queries = *queries
		}
		tr := traces.GenerateAllNames(cfg)
		if err := traces.WriteRecords(out, tr.Records); err != nil {
			log.Fatalf("tracegen: %v", err)
		}
		if err := out.Flush(); err != nil {
			log.Fatalf("tracegen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: %d records, %d clients\n", len(tr.Records), len(tr.Clients))
	case "publiccdn":
		cfg := traces.DefaultPublicCDN
		cfg.Seed = *seed
		if *resolvers > 0 {
			cfg.Resolvers = *resolvers
		}
		total := 0
		for _, tr := range traces.GeneratePublicCDN(cfg) {
			if err := traces.WriteRecords(out, tr.Records); err != nil {
				log.Fatalf("tracegen: %v", err)
			}
			total += len(tr.Records)
		}
		if err := out.Flush(); err != nil {
			log.Fatalf("tracegen: %v", err)
		}
		fmt.Fprintf(os.Stderr, "tracegen: %d records across %d resolvers\n", total, cfg.Resolvers)
	default:
		log.Fatalf("tracegen: unknown dataset %q", *dataset)
	}
}
