#!/bin/sh
# verify.sh — the full tier-1 gate plus static analysis and fuzz smokes.
#
#   ./verify.sh                run everything (~2 min: race suite + 3×10s fuzz)
#   FUZZTIME=30s ./verify.sh   longer fuzz smokes
#
# Stages run in order and the script exits non-zero at the first
# failure, so the last banner printed names the stage that broke.
set -eu

FUZZTIME="${FUZZTIME:-10s}"

stage() {
	echo ""
	echo "=== verify: $* ==="
}

stage "go build ./..."
go build ./...

stage "gofmt (all files formatted)"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: files need formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

stage "go vet ./..."
go vet ./...

stage "ecslint (project invariants)"
go run ./cmd/ecslint ./...

stage "go test ./..."
go test ./...

stage "go test -race ./..."
go test -race ./...

# The serving layer under overload, replayed: flood at a multiple of the
# admission capacity with panicking queries, plus the exact RRL storm.
# -short trims the flood factor so the replay stays inside a small
# budget; the full-scale variant already ran in the race suite above.
stage "overload chaostest (flood + RRL storm, -race, replay x2)"
go test -race -short -count=2 -run 'TestOverload|TestRRLStorm' ./internal/netem/chaostest

# The upstream pool under partial failure, replayed: a blackout that
# must failover with ≥99% answered, and a flapping mirror that must
# drive a full breaker lifecycle (Closed→Open→HalfOpen→Closed) with a
# replay-identical transition trace. -count=2 reruns each scenario in
# the same process, so the determinism assertions cover fresh and
# warmed runtime state.
stage "failover chaostest (blackout + flapping breaker, -race, replay x2)"
go test -race -count=2 -run 'TestChaosBlackoutFailover|TestChaosFlappingUpstream' ./internal/netem/chaostest

# Cache benchmark smoke: a short fixed-iteration run of the sharding
# benchmarks, piped through benchjson so the BENCH_cache.json schema
# and required benchmark set are validated on every verify. Full-length
# runs (see EXPERIMENTS.md) regenerate the committed artifact.
stage "bench smoke (cache benchmarks -> results/BENCH_cache.json schema)"
go test -run NONE -bench 'BenchmarkCacheLookup|BenchmarkCacheChurn' \
	-benchtime 100x -benchmem -cpu 4 ./internal/ecscache \
	| go run ./cmd/benchjson \
		-require BenchmarkCacheLookup,BenchmarkCacheChurn \
		-out /tmp/BENCH_cache.smoke.json

# Scan-throughput benchmark smoke: one pass over the full
# (delay, shards, batch) grid — including the zero-alloc codec and
# sharded-pipeline hot paths — validated against the BENCH_scan.json
# schema. Full-length runs (see EXPERIMENTS.md) regenerate the
# committed artifact.
stage "bench smoke (scan throughput -> results/BENCH_scan.json schema)"
go test -run NONE -bench BenchmarkScanThroughput \
	-benchtime 1x -benchmem ./internal/scanner \
	| go run ./cmd/benchjson \
		-require BenchmarkScanThroughput \
		-out /tmp/BENCH_scan.smoke.json

# Resilience benchmark smoke: breaker fast-fail and hedged-vs-unhedged
# pool runs, validated against the BENCH_resilience.json schema. The
# virtual-latency percentiles (p50/p99-virtual-ms) ride along as
# custom metrics. Full-length runs (see EXPERIMENTS.md) regenerate the
# committed artifact.
stage "bench smoke (upstream resilience -> results/BENCH_resilience.json schema)"
go test -run NONE -bench 'BenchmarkBreakerFastFail|BenchmarkPoolHedging' \
	-benchtime 200x -benchmem ./internal/upstreams \
	| go run ./cmd/benchjson \
		-require BenchmarkBreakerFastFail,BenchmarkPoolHedging \
		-out /tmp/BENCH_resilience.smoke.json

stage "fuzz smoke tests (${FUZZTIME} each)"
go test -fuzz 'FuzzUnpack$'      -fuzztime "$FUZZTIME" -run NONE ./internal/dnswire
go test -fuzz 'FuzzUnpackReuse$' -fuzztime "$FUZZTIME" -run NONE ./internal/dnswire
go test -fuzz 'FuzzNameParse$'   -fuzztime "$FUZZTIME" -run NONE ./internal/dnswire
go test -fuzz 'FuzzDecode$'      -fuzztime "$FUZZTIME" -run NONE ./internal/ecsopt

echo ""
echo "verify: all green"
