#!/bin/sh
# verify.sh — the full tier-1 gate plus fuzz smoke tests.
#
#   ./verify.sh           run everything (~2 min: race suite + 3×10s fuzz)
#   FUZZTIME=30s ./verify.sh   longer fuzz smokes
#
# Exits non-zero on the first failure.
set -eu

FUZZTIME="${FUZZTIME:-10s}"

echo "== go build ./..."
go build ./...

echo "== go vet ./..."
go vet ./...

echo "== go test ./..."
go test ./...

echo "== go test -race ./..."
go test -race ./...

echo "== fuzz smoke tests (${FUZZTIME} each)"
go test -fuzz FuzzUnpack    -fuzztime "$FUZZTIME" -run NONE ./internal/dnswire
go test -fuzz FuzzNameParse -fuzztime "$FUZZTIME" -run NONE ./internal/dnswire
go test -fuzz FuzzDecode    -fuzztime "$FUZZTIME" -run NONE ./internal/ecsopt

echo "verify: all green"
