package ecsdns

import "testing"

func TestExperimentsListed(t *testing.T) {
	ids := Experiments()
	if len(ids) != 20 {
		t.Fatalf("experiments = %v", ids)
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", DefaultConfig()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunOne(t *testing.T) {
	rep, err := Run("table2", Config{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "table2" || len(rep.Metrics) == 0 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestRunAllSmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is exercised per-experiment in internal/core")
	}
	reps, err := RunAll(Config{Scale: 0.02, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(Experiments()) {
		t.Fatalf("got %d reports", len(reps))
	}
}
