package ecsdns

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"ecsdns/internal/cachesim"
	"ecsdns/internal/dnswire"
	"ecsdns/internal/ecscache"
	"ecsdns/internal/ecsopt"
	"ecsdns/internal/traces"
)

// benchConfig keeps each regeneration under a second or two so the full
// bench sweep is practical; the shapes are scale-invariant.
func benchConfig() Config { return Config{Scale: 0.02, Seed: 1} }

// runExp executes one experiment per iteration — each bench regenerates
// its paper artifact end to end.
func runExp(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := Run(id, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Metrics) == 0 {
			b.Fatal("empty report")
		}
	}
}

// One benchmark per paper table and figure.

func BenchmarkSection4Datasets(b *testing.B)    { runExp(b, "section4") }
func BenchmarkSection5Discovery(b *testing.B)   { runExp(b, "section5") }
func BenchmarkTable1PrefixLengths(b *testing.B) { runExp(b, "table1") }
func BenchmarkSection61Probing(b *testing.B)    { runExp(b, "section6_1") }
func BenchmarkSection63Caching(b *testing.B)    { runExp(b, "section6_3") }
func BenchmarkFig1CacheBlowup(b *testing.B)     { runExp(b, "fig1") }
func BenchmarkFig2BlowupVsClients(b *testing.B) { runExp(b, "fig2") }
func BenchmarkFig3HitRate(b *testing.B)         { runExp(b, "fig3") }
func BenchmarkTable2Unroutable(b *testing.B)    { runExp(b, "table2") }
func BenchmarkFig4HiddenMP(b *testing.B)        { runExp(b, "fig4") }
func BenchmarkFig5HiddenNonMP(b *testing.B)     { runExp(b, "fig5") }
func BenchmarkFig6CDN1Sweep(b *testing.B)       { runExp(b, "fig6") }
func BenchmarkFig7CDN2Sweep(b *testing.B)       { runExp(b, "fig7") }
func BenchmarkFig8Flattening(b *testing.B)      { runExp(b, "fig8") }

// Benches for the §9/§7 extension experiments.

func BenchmarkExtAdaptive(b *testing.B)    { runExp(b, "ext_adaptive") }
func BenchmarkExtECSFraction(b *testing.B) { runExp(b, "ext_ecsfraction") }
func BenchmarkExtEvictions(b *testing.B)   { runExp(b, "ext_evictions") }
func BenchmarkExtLabStudy(b *testing.B)    { runExp(b, "ext_labstudy") }
func BenchmarkExtScale(b *testing.B)       { runExp(b, "ext_scale") }

// Ablation benches for the design choices DESIGN.md calls out.

// BenchmarkAblationCompression quantifies what DNS name compression buys
// on a realistic CDN response.
func BenchmarkAblationCompression(b *testing.B) {
	msg := benchResponse()
	b.Run("compressed", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for i := 0; i < b.N; i++ {
			data, err := msg.Pack()
			if err != nil {
				b.Fatal(err)
			}
			size = len(data)
		}
		b.ReportMetric(float64(size), "bytes/msg")
	})
	b.Run("uncompressed", func(b *testing.B) {
		b.ReportAllocs()
		var size int
		for i := 0; i < b.N; i++ {
			data, err := msg.PackNoCompress()
			if err != nil {
				b.Fatal(err)
			}
			size = len(data)
		}
		b.ReportMetric(float64(size), "bytes/msg")
	})
}

func benchResponse() *dnswire.Message {
	q := dnswire.NewQuery(1, "video.edge.cdn.example.net.", dnswire.TypeA)
	m := dnswire.NewResponse(q)
	for i := 0; i < 12; i++ {
		m.Answers = append(m.Answers, dnswire.RR{
			Name: "video.edge.cdn.example.net.", Class: dnswire.ClassINET, TTL: 20,
			Data: &dnswire.ARData{Addr: netip.AddrFrom4([4]byte{192, 0, 2, byte(i)})},
		})
	}
	m.Authorities = append(m.Authorities, dnswire.RR{
		Name: "cdn.example.net.", Class: dnswire.ClassINET, TTL: 3600,
		Data: &dnswire.NSRData{Host: "ns1.cdn.example.net."},
	})
	return m
}

// BenchmarkAblationScopeHandling compares the cost and effect of
// honoring vs ignoring ECS scope on a replayed trace — the 103-resolver
// bug as a cache-behavior ablation.
func BenchmarkAblationScopeHandling(b *testing.B) {
	cfg := traces.DefaultAllNames
	cfg.Queries = 40000
	tr := traces.GenerateAllNames(cfg)
	for _, mode := range []struct {
		name  string
		honor bool
	}{{"honor-scope", true}, {"ignore-scope", false}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			var rate float64
			for i := 0; i < b.N; i++ {
				rate = cachesim.HitRate(tr.Records, mode.honor).Rate()
			}
			b.ReportMetric(rate, "hit%")
		})
	}
}

// BenchmarkAblationCacheOps compares the two per-question cache lookup
// structures — the default linear covering scan vs the hash index — at
// realistic and pathological per-question fanouts. This is the cache
// data-structure ablation DESIGN.md calls out.
func BenchmarkAblationCacheOps(b *testing.B) {
	t0 := time.Date(2019, 3, 1, 0, 0, 0, 0, time.UTC)
	key := ecscache.Key{Name: "www.example.com.", Type: dnswire.TypeA, Class: dnswire.ClassINET}
	for _, impl := range []struct {
		name    string
		indexed bool
	}{{"linear", false}, {"indexed", true}} {
		for _, fanout := range []int{8, 256} {
			name := fmt.Sprintf("%s/fanout-%d", impl.name, fanout)
			b.Run("lookup-"+name, func(b *testing.B) {
				c := ecscache.New(ecscache.Config{Mode: ecscache.HonorScope, Indexed: impl.indexed})
				for i := 0; i < fanout; i++ {
					addr := netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0})
					cs := ecsopt.MustNew(addr, 24).WithScope(24)
					c.Insert(key, ecscache.Entry{Subnet: cs, HasECS: true, Expiry: t0.Add(time.Hour)}, t0)
				}
				client := netip.AddrFrom4([4]byte{10, 0, byte(fanout / 2), 9})
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, ok := c.Lookup(key, client, t0); !ok {
						b.Fatal("miss")
					}
				}
			})
			b.Run("insert-"+name, func(b *testing.B) {
				c := ecscache.New(ecscache.Config{Mode: ecscache.HonorScope, Indexed: impl.indexed})
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					addr := netip.AddrFrom4([4]byte{10, byte(i >> 8 % fanout), byte(i % fanout), 0})
					cs := ecsopt.MustNew(addr, 24).WithScope(24)
					c.Insert(key, ecscache.Entry{Subnet: cs, HasECS: true, Expiry: t0.Add(time.Hour)}, t0)
				}
			})
		}
	}
}

// BenchmarkWireRoundTrip measures the codec itself.
func BenchmarkWireRoundTrip(b *testing.B) {
	msg := benchResponse()
	ecsopt.Attach(msg, ecsopt.MustNew(netip.MustParseAddr("203.0.113.0"), 24).WithScope(24))
	data, err := msg.Pack()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("pack", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := msg.Pack(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("unpack", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := dnswire.Unpack(data); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBlowupReplay measures the trace-driven cache counting engine.
func BenchmarkBlowupReplay(b *testing.B) {
	cfg := traces.DefaultPublicCDN
	cfg.Resolvers = 20
	trs := traces.GeneratePublicCDN(cfg)
	total := 0
	for _, tr := range trs {
		total += len(tr.Records)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range trs {
			cachesim.Blowup(tr.Records, 0)
		}
	}
	b.ReportMetric(float64(total), "records")
}

// BenchmarkAblationProbing measures the privacy cost of each probing
// strategy: the number of upstream queries that leak real client bits to
// an authority that never answers with ECS (the paper's §6.1 argument
// for probing with the resolver's own address).
func BenchmarkAblationProbing(b *testing.B) {
	for _, tc := range []struct {
		name    string
		profile func() resolverProfile
	}{
		{"always", profAlways},
		{"interval-loopback", profLoopback},
		{"interval-own-addr", profOwnAddr},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var leaked, total int
			for i := 0; i < b.N; i++ {
				leaked, total = measureLeak(tc.profile())
			}
			if total > 0 {
				b.ReportMetric(float64(leaked)/float64(total)*100, "leak%")
			}
		})
	}
}
