GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet fuzz verify experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fuzz:
	$(GO) test -fuzz FuzzUnpack    -fuzztime $(FUZZTIME) -run NONE ./internal/dnswire
	$(GO) test -fuzz FuzzNameParse -fuzztime $(FUZZTIME) -run NONE ./internal/dnswire
	$(GO) test -fuzz FuzzDecode    -fuzztime $(FUZZTIME) -run NONE ./internal/ecsopt

# The full tier-1 gate plus fuzz smokes, as verify.sh.
verify:
	FUZZTIME=$(FUZZTIME) ./verify.sh

experiments:
	$(GO) run ./cmd/ecslab all
