GO ?= go
FUZZTIME ?= 10s

.PHONY: build test race vet lint fuzz verify experiments

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Static analysis: formatting, vet, and the project-specific ecslint
# checks (determinism, wire-safety, concurrency invariants).
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt: files need formatting:" >&2; \
		echo "$$unformatted" >&2; \
		exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/ecslint ./...

fuzz:
	$(GO) test -fuzz FuzzUnpack    -fuzztime $(FUZZTIME) -run NONE ./internal/dnswire
	$(GO) test -fuzz FuzzNameParse -fuzztime $(FUZZTIME) -run NONE ./internal/dnswire
	$(GO) test -fuzz FuzzDecode    -fuzztime $(FUZZTIME) -run NONE ./internal/ecsopt

# The full tier-1 gate plus fuzz smokes, as verify.sh.
verify:
	FUZZTIME=$(FUZZTIME) ./verify.sh

experiments:
	$(GO) run ./cmd/ecslab all
