module ecsdns

go 1.22
