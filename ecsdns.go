// Package ecsdns is a full reproduction of "A Look at the ECS Behavior
// of DNS Resolvers" (Al-Dalky, Rabinovich, Schomp — IMC 2019) as a Go
// library: a DNS wire stack with EDNS0 Client Subnet, an ECS-complete
// recursive resolver with every compliant and deviant behavior class the
// paper observes, authoritative/CDN server models, active-scan and
// passive-log measurement tooling, and one executable experiment per
// table and figure in the paper's evaluation.
//
// This root package is the facade: it re-exports the experiment
// registry. The building blocks live under internal/ (see DESIGN.md for
// the package map); the runnable entry points are cmd/ecslab (all
// experiments), cmd/authdns, cmd/recursor and cmd/ecsscan (real-socket
// tools), and the examples/ directory.
package ecsdns

import (
	"fmt"

	"ecsdns/internal/core"
)

// Config controls experiment scale and seeding; see core.Config.
type Config = core.Config

// Report is an experiment result; see core.Report.
type Report = core.Report

// Metric is a paper-vs-measured comparison; see core.Metric.
type Metric = core.Metric

// DefaultConfig returns the scale the test suite and benchmarks use.
func DefaultConfig() Config { return core.DefaultConfig() }

// Experiments lists the registered experiment ids (one per paper table,
// figure, and quantitative section finding).
func Experiments() []string { return core.IDs() }

// Run executes one experiment by id ("table1", "fig3", …). A panicking
// experiment is isolated and reported as an error, so one buggy
// experiment cannot take down a batch run (cmd/ecslab keeps going).
func Run(id string, cfg Config) (*Report, error) {
	e, ok := core.Get(id)
	if !ok {
		return nil, fmt.Errorf("ecsdns: unknown experiment %q (have %v)", id, core.IDs())
	}
	return runIsolated(e, cfg)
}

// RunAll executes every experiment and returns the reports in id order.
func RunAll(cfg Config) ([]*Report, error) {
	var out []*Report
	for _, e := range core.All() {
		rep, err := runIsolated(e, cfg)
		if err != nil {
			return out, fmt.Errorf("ecsdns: %s: %w", e.ID, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

func runIsolated(e core.Experiment, cfg Config) (rep *Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, fmt.Errorf("ecsdns: experiment %s panicked: %v", e.ID, r)
		}
	}()
	return e.Run(cfg)
}
