// Quickstart: build and parse ECS DNS messages, then watch a recursive
// resolver enforce ECS scope-limited caching against an authoritative
// server — all in memory on the simulated network.
package main

import (
	"fmt"
	"log"
	"net/netip"

	"ecsdns/internal/authority"
	"ecsdns/internal/dnswire"
	"ecsdns/internal/ecsopt"
	"ecsdns/internal/geo"
	"ecsdns/internal/netem"
	"ecsdns/internal/resolver"
)

func main() {
	// 1. The wire format: an A query carrying an ECS option.
	query := dnswire.NewQuery(0x1234, "www.example.org.", dnswire.TypeA)
	ecsopt.Attach(query, ecsopt.MustNew(netip.MustParseAddr("203.0.113.99"), 24))
	packed, err := query.Pack()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("packed ECS query: %d bytes\n", len(packed))
	parsed, err := dnswire.Unpack(packed)
	if err != nil {
		log.Fatal(err)
	}
	cs, _, _ := ecsopt.FromMessage(parsed)
	fmt.Printf("parsed back: %s with client subnet %s\n\n", parsed.Question(), cs)

	// 2. A world, a network, an ECS authoritative server, a resolver.
	world := geo.Build(geo.DefaultConfig)
	net := netem.New(world)

	authAddr := world.AddrInCity(geo.CityIndex("Frankfurt"), 1, 53)
	auth := authority.NewServer(authority.Config{
		Addr:       authAddr,
		ECSEnabled: true,
		Scope:      authority.ScopeFixed(24), // answers valid per /24
		Now:        net.Clock().Now,
	})
	zone := authority.NewZone("example.org.", 60)
	zone.MustAdd(dnswire.RR{Name: "www.example.org.", Data: &dnswire.ARData{
		Addr: netip.MustParseAddr("192.0.2.80"),
	}})
	auth.AddZone(zone)
	queries := 0
	auth.SetLog(func(r authority.LogRecord) {
		queries++
		fmt.Printf("  authority saw query #%d from %s with ECS %s\n", queries, r.Resolver, r.QueryECS)
	})
	net.Register(authAddr, auth)

	dir := resolver.NewDirectory()
	dir.Add("example.org.", authAddr)
	resAddr := world.AddrInCity(geo.CityIndex("London"), 2, 53)
	res := resolver.New(resolver.Config{
		Addr:      resAddr,
		Transport: net,
		Now:       net.Clock().Now,
		Directory: dir,
		Profile:   resolver.CompliantProfile(),
		Seed:      1,
	})
	net.Register(resAddr, res)

	// 3. Three clients: two in one /24, one in another. The authority
	// returns scope /24, so the resolver may share the cached answer
	// only within the first /24.
	clientA1 := world.AddrInCity(geo.CityIndex("Paris"), 3, 10)
	a4 := clientA1.As4()
	a4[3] ^= 0x5
	clientA2 := netip.AddrFrom4(a4) // same /24
	clientB := world.AddrInCity(geo.CityIndex("Tokyo"), 4, 10)

	ask := func(who string, client netip.Addr) {
		q := dnswire.NewQuery(1, "www.example.org.", dnswire.TypeA)
		q.EDNS = dnswire.NewEDNS()
		resp, rtt, err := net.Exchange(client, resAddr, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s (%s): %d answer(s) in %v\n", who, client, len(resp.Answers), rtt.Round(1e6))
	}
	fmt.Println("client A1 asks (cache miss → upstream query):")
	ask("A1", clientA1)
	fmt.Println("client A2, same /24 (cache hit → no upstream query):")
	ask("A2", clientA2)
	fmt.Println("client B, different /24 (scope forbids reuse → upstream query):")
	ask("B", clientB)

	st := res.Cache().Stats()
	fmt.Printf("\nresolver cache: %d hits, %d misses; authority answered %d queries\n",
		st.Hits, st.Misses, queries)
}
