// Cache cost: the operator's-eye view of §7 — how much bigger a
// resolver cache gets and how much the hit rate drops once ECS scope
// restrictions are honored, on a small synthetic trace.
package main

import (
	"fmt"
	"time"

	"ecsdns/internal/cachesim"
	"ecsdns/internal/stats"
	"ecsdns/internal/traces"
)

func main() {
	// A modest public-resolver trace: 40 egress resolvers talking to a
	// CDN with 20-second TTLs.
	cfg := traces.DefaultPublicCDN
	cfg.Resolvers = 40
	trs := traces.GeneratePublicCDN(cfg)

	fmt.Println("Per-resolver cache blow-up when honoring ECS scopes (CDN trace, TTL 20 s):")
	var factors []float64
	for _, tr := range trs {
		factors = append(factors, cachesim.Blowup(tr.Records, 0).Factor())
	}
	s := stats.Summarize(factors)
	fmt.Printf("  %s\n\n", s)

	fmt.Println("The same resolvers if the CDN used 60-second TTLs:")
	factors = factors[:0]
	for _, tr := range trs {
		factors = append(factors, cachesim.Blowup(tr.Records, 60*time.Second).Factor())
	}
	fmt.Printf("  %s\n\n", stats.Summarize(factors))

	// A single busy resolver's all-names trace: hit rate with and
	// without ECS.
	an := traces.DefaultAllNames
	an.Queries = 60000
	an.Clients = 1000
	tr := traces.GenerateAllNames(an)
	plain := cachesim.HitRate(tr.Records, false)
	ecs := cachesim.HitRate(tr.Records, true)
	fmt.Printf("Busy-resolver hit rate over %d queries:\n", plain.Queries)
	fmt.Printf("  classic cache (scope ignored): %5.1f%%\n", plain.Rate())
	fmt.Printf("  ECS cache (scope honored):     %5.1f%%\n", ecs.Rate())
	fmt.Printf("  → ECS costs %.1f points of hit rate for this workload\n",
		plain.Rate()-ecs.Rate())
}
