// Flattening: the §8.4 CNAME-flattening pitfall as a runnable scenario —
// a Sydney client reaching a site whose apex is flattened by a
// Washington DNS provider, first without and then with ECS passed on the
// provider→CDN backend resolution.
package main

import (
	"fmt"
	"log"
	"time"

	"ecsdns/internal/flatten"
)

func main() {
	run := func(title string, cfg flatten.Config) *flatten.Result {
		res, err := flatten.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(title)
		for i, s := range res.Steps {
			fmt.Printf("  %d. %-45s t=%v\n", i+1, s.Name, s.Elapsed.Round(time.Millisecond))
		}
		fmt.Printf("  first edge %s (RTT %v), corrected edge %s (RTT %v)\n",
			res.E1, res.E1RTT.Round(time.Millisecond),
			res.E2, res.E2RTT.Round(time.Millisecond))
		fmt.Printf("  apex access %v vs direct www %v → penalty %v\n\n",
			res.ApexTotal.Round(time.Millisecond),
			res.DirectTotal.Round(time.Millisecond),
			res.Penalty.Round(time.Millisecond))
		return res
	}

	base := run("CNAME flattening WITHOUT ECS on the backend leg (the pitfall):",
		flatten.DefaultConfig)

	cfg := flatten.DefaultConfig
	cfg.PassECSOnFlatten = true
	fixed := run("Same setup WITH ECS passed on the flattened resolution (the fix):", cfg)

	fmt.Printf("passing ECS on the backend leg recovers %v of the penalty\n",
		(base.Penalty - fixed.Penalty).Round(time.Millisecond))
}
