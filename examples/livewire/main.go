// Livewire: the whole stack over real sockets on loopback — an ECS
// authoritative server, an ECS recursive resolver in front of it, and a
// stub client probing through both, in one process.
package main

import (
	"context"
	"fmt"
	"log"
	"net/netip"
	"time"

	"ecsdns/internal/authority"
	"ecsdns/internal/dnsclient"
	"ecsdns/internal/dnsserver"
	"ecsdns/internal/dnswire"
	"ecsdns/internal/ecsopt"
	"ecsdns/internal/resolver"
)

// socketTransport adapts the stub client to the resolver Transport.
type socketTransport struct {
	client   *dnsclient.Client
	upstream string
}

func (t *socketTransport) Exchange(_, _ netip.Addr, q *dnswire.Message) (*dnswire.Message, time.Duration, error) {
	start := time.Now() //ecslint:ignore wallclock live-wire demo: measures real RTT
	resp, err := t.client.Exchange(t.upstream, q)
	return resp, time.Since(start), err
}

func main() {
	// 1. Authoritative server with ECS (scope = source − 4, the scan
	// policy) on an ephemeral loopback port.
	auth := authority.NewServer(authority.Config{
		ECSEnabled: true,
		Scope:      authority.ScopeSourceMinus(4),
		Now:        time.Now, //ecslint:ignore wallclock live-wire demo runs on the real clock
	})
	zone := authority.NewZone("live.example.", 30)
	zone.SetWildcard(dnswire.TypeA, &dnswire.ARData{Addr: netip.MustParseAddr("192.0.2.80")})
	auth.AddZone(zone)
	authSrv := dnsserver.New(auth)
	authBound, err := authSrv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer authSrv.Close()
	fmt.Printf("authoritative on %s\n", authBound)

	// 2. A compliant recursive resolver forwarding to it.
	dir := resolver.NewDirectory()
	dir.Add("live.example.", netip.MustParseAddr("192.0.2.1")) // routed by socket transport
	res := resolver.New(resolver.Config{
		Addr:      netip.MustParseAddr("127.0.0.1"),
		Transport: &socketTransport{client: &dnsclient.Client{}, upstream: authBound.String()},
		Now:       time.Now, //ecslint:ignore wallclock live-wire demo runs on the real clock
		Directory: dir,
		Profile:   resolver.CompliantProfile(),
		Seed:      1,
	})
	resSrv := dnsserver.New(res)
	resBound, err := resSrv.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer resSrv.Close()
	fmt.Printf("recursive resolver on %s\n\n", resBound)

	// 3. A stub client queries through the resolver with ECS.
	client := &dnsclient.Client{}
	cs := ecsopt.MustNew(netip.MustParseAddr("203.0.113.64"), 24)
	resp, err := client.Query(resBound.String(), "www.live.example.", dnswire.TypeA, &cs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("answer: %v\n", resp.Answers)
	if got, ok := dnsclient.ECSFromResponse(resp); ok {
		fmt.Printf("response ECS: %s — the authority scoped the answer to /%d\n",
			got, got.ScopePrefix)
	}

	// 4. A second query from the same /24 is a resolver cache hit; the
	// resolver's upstream counter proves it never left the cache.
	if _, err := client.Query(resBound.String(), "www.live.example.", dnswire.TypeA, &cs); err != nil {
		log.Fatal(err)
	}
	clientQ, upstreamQ := res.Counters()
	fmt.Printf("\nresolver served %d client queries with %d upstream queries (1 cache hit)\n",
		clientQ, upstreamQ)

	// 5. Drain both servers gracefully and print their accounting — the
	// same lifecycle the daemons run on SIGTERM.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := resSrv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := authSrv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resolver server:  %s\n", resSrv.Stats())
	fmt.Printf("authority server: %s\n", authSrv.Stats())
}
