// Scanner: an active measurement campaign over a simulated open-resolver
// population — hostname-encoded probes associate ingress forwarders with
// the egress resolvers they use, detect ECS support and hidden
// resolvers, then the two-query methodology classifies each reachable
// resolver's caching behavior (§6.3).
//
// The probe phase runs through the concurrent scan engine; -concurrency,
// -rate, and -timeout expose its knobs. The in-memory netem fabric is
// not safe for concurrent handler execution, so the transport itself is
// serialized behind a mutex here — against real sockets (cmd/ecsscan
// -targets) the same engine fans out for real.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/netip"
	"os"
	"sync"
	"time"

	"ecsdns/internal/authority"
	"ecsdns/internal/dnswire"
	"ecsdns/internal/ecsopt"
	"ecsdns/internal/geo"
	"ecsdns/internal/netem"
	"ecsdns/internal/resolver"
	"ecsdns/internal/scanner"
)

func main() {
	concurrency := flag.Int("concurrency", 8, "probes in flight during the scan phase")
	rate := flag.Float64("rate", 0, "max probe queries/sec (0 = unlimited)")
	timeout := flag.Duration("timeout", 3*time.Second, "per-probe timeout")
	faults := flag.String("faults", "", `fault-injection spec for the fabric, e.g. "loss=0.2,servfail=0.1" (see netem.ParseFaultPlan)`)
	faultSeed := flag.Int64("fault-seed", 1, "seed for the fault RNG (same seed ⇒ same failure trace)")
	flag.Parse()
	world := geo.Build(geo.DefaultConfig)
	net := netem.New(world)
	plan, err := netem.ParseFaultPlan(*faults)
	if err != nil {
		fmt.Println("bad -faults:", err)
		os.Exit(2)
	}
	net.SetFaults(plan, *faultSeed)
	logs := &scanner.LogBuffer{}
	scope := scanner.NewScopeControl()

	// Our experimental authoritative nameserver in Cleveland.
	zone := dnswire.Name("scan.example.org.")
	authAddr := world.AddrInCity(geo.CityIndex("Cleveland"), 1, 53)
	auth := authority.NewServer(authority.Config{
		Addr: authAddr, ECSEnabled: true, Scope: scope.Func(), RawScope: true,
		Now: net.Clock().Now,
	})
	z := authority.NewZone(zone, 30)
	z.SetWildcard(dnswire.TypeA, &dnswire.ARData{Addr: netip.MustParseAddr("192.0.2.53")})
	auth.AddZone(z)
	auth.SetLog(logs.Append)
	net.Register(authAddr, auth)

	dir := resolver.NewDirectory()
	dir.Add(zone, authAddr)
	scannerAddr := world.AddrInCity(geo.CityIndex("Cleveland"), 2, 9)

	// A small resolver population with mixed behaviors, each behind an
	// open forwarder; one is chained through a hidden resolver.
	type target struct {
		name    string
		profile resolver.Profile
	}
	targets := []target{
		{"compliant", resolver.CompliantProfile()},
		{"ignore-scope", resolver.IgnoreScopeProfile()},
		{"cap-22", resolver.Cap22Profile()},
		{"jammed-/32", resolver.JammedProfile()},
		{"non-ECS", resolver.NonECSProfile()},
	}
	var ingresses []netip.Addr
	egressName := map[netip.Addr]string{}
	for i, tg := range targets {
		egress := resolver.New(resolver.Config{
			Addr:      world.AddrInCity((i*5)%len(geo.Cities), 10+i, 53),
			Transport: net, Now: net.Clock().Now, Directory: dir,
			Profile: tg.profile, Seed: int64(i),
		})
		net.Register(egress.Addr(), egress)
		egressName[egress.Addr()] = tg.name

		upstream := egress.Addr()
		if tg.name == "jammed-/32" {
			// Chain through a hidden resolver far from the forwarder.
			hidden := world.AddrInCity(geo.CityIndex("Rome"), 30+i, 98)
			net.Register(hidden, &resolver.Forwarder{
				Addr: hidden, Upstream: egress.Addr(), Transport: net, Open: true,
			})
			upstream = hidden
		}
		fwd := world.AddrInCity((i*11+3)%len(geo.Cities), 50+i, 99)
		net.Register(fwd, &resolver.Forwarder{
			Addr: fwd, Upstream: upstream, Transport: net, Open: true,
		})
		ingresses = append(ingresses, fwd)
	}

	// Phase 1: the scan, fanned out over the worker-pool engine. The
	// mutex serializes netem (see the package comment); everything above
	// the transport — worker pool, rate limiting, ID allocation,
	// response validation — runs concurrently.
	var netMu sync.Mutex
	prog := scanner.NewProgress()
	scan := &scanner.Scan{
		ExchangeCtx: func(_ context.Context, to netip.Addr, q *dnswire.Message) (*dnswire.Message, error) {
			netMu.Lock()
			defer netMu.Unlock()
			resp, _, err := net.Exchange(scannerAddr, to, q)
			return resp, err
		},
		Zone: zone, ScannerAddr: scannerAddr,
		Concurrency: *concurrency, Rate: *rate, Timeout: *timeout,
		Progress: prog,
	}
	res := scan.Run(ingresses, logs)
	snap := prog.Snapshot()
	fmt.Printf("probed %d ingresses, %d responded (%.0f probes/s wall-clock)\n",
		res.Probed, len(res.Responding), snap.QPS)
	if snap.Errors > 0 || !plan.IsZero() {
		fmt.Printf("  probe accounting: sent=%d done=%d errors=%d (timeouts=%d truncated=%d mismatched=%d)\n",
			snap.Sent, snap.Done, snap.Errors, snap.Timeouts, snap.Truncated, snap.Mismatched)
		fs := net.FaultStats()
		fmt.Printf("  fault layer: lost=%d blackouts=%d truncated=%d servfails=%d corrupted=%d delayed=%d\n",
			fs.Lost, fs.Blackouts, fs.Truncated, fs.ServFails, fs.Corrupted, fs.Delayed)
	}
	for ing, egs := range res.IngressToEgress {
		for _, eg := range egs {
			fmt.Printf("  ingress %-15s → egress %-15s (%s) ECS=%v\n",
				ing, eg, egressName[eg], res.ECSEgress[eg])
		}
	}
	for _, combo := range res.HiddenCombos {
		fmt.Printf("  hidden resolver detected: forwarder %s → hidden %s → egress %s (%s)\n",
			combo.Forwarder, combo.HiddenPrefix, combo.Egress, egressName[combo.Egress])
	}

	// Phase 2: cache-behavior classification of the ECS egresses.
	// Each resolver first gets the acceptance pre-test; paths that
	// convey injected prefixes get technique 1, the rest are probed
	// through three vantage forwarders in the methodology's /24 layout.
	fmt.Println("\ncache-behavior classification (§6.3 two-query methodology):")
	vantageSalt := 0
	for eg := range res.ECSEgress {
		eg := eg
		send := func(v int, name dnswire.Name, inject *ecsopt.ClientSubnet) error {
			q := dnswire.NewQuery(uint16(v+1), name, dnswire.TypeA)
			if inject != nil {
				ecsopt.Attach(q, *inject)
			}
			_, _, err := net.Exchange(scannerAddr, eg, q)
			return err
		}
		direct := &scanner.Prober{Zone: zone, Logs: logs, Scope: scope, Send: send}
		canInject, err := direct.DetectInjection()
		if err != nil {
			fmt.Printf("  injection pre-test for %s failed: %v\n", eg, err)
			os.Exit(1)
		}
		if !canInject {
			var fwds [3]netip.Addr
			for i, p := range scanner.InjectionPrefixes {
				a := p.Addr().As4()
				a[3] = byte(9 + vantageSalt)
				fwds[i] = netip.AddrFrom4(a)
				net.Register(fwds[i], &resolver.Forwarder{
					Addr: fwds[i], Upstream: eg, Transport: net, Open: true,
				})
			}
			vantageSalt++
			send = func(v int, name dnswire.Name, _ *ecsopt.ClientSubnet) error {
				q := dnswire.NewQuery(uint16(v+1), name, dnswire.TypeA)
				_, _, err := net.Exchange(scannerAddr, fwds[v], q)
				return err
			}
		}
		prober := &scanner.Prober{
			Zone: zone, Logs: logs, Scope: scope,
			Send: send, CanInject: canInject,
		}
		obs, err := prober.Probe()
		if err != nil {
			fmt.Printf("  probing %s failed: %v\n", eg, err)
			os.Exit(1)
		}
		class := scanner.Classify(obs)
		fmt.Printf("  %-15s (%-12s) injectable=%-5v → classified %q\n",
			eg, egressName[eg], canInject, class)
	}
}
