// CDN mapping: the latency win ECS gives clients of far-away public
// resolvers — and the damage a hidden resolver does to it. This is the
// paper's motivating scenario (§1, §8.2) as a runnable program.
package main

import (
	"fmt"
	"log"
	"net/netip"
	"time"

	"ecsdns/internal/authority"
	"ecsdns/internal/cdn"
	"ecsdns/internal/dnswire"
	"ecsdns/internal/geo"
	"ecsdns/internal/netem"
	"ecsdns/internal/resolver"
)

func main() {
	world := geo.Build(geo.DefaultConfig)
	net := netem.New(world)

	// A CDN with edges everywhere and an ECS-enabled authoritative.
	policy := cdn.NewGoogleLike(world)
	authAddr := world.AddrInCity(geo.CityIndex("Frankfurt"), 9, 53)
	auth := authority.NewCDNServer(authority.Config{
		Addr:       authAddr,
		ECSEnabled: true,
		Now:        net.Clock().Now,
	}, "cdn.example.net.", policy, 20)
	net.Register(authAddr, auth)

	dir := resolver.NewDirectory()
	dir.Add("cdn.example.net.", authAddr)

	// A public resolver in Mountain View, used by a client in Sydney.
	newResolver := func(profile resolver.Profile, salt int) *resolver.Resolver {
		addr := world.AddrInCity(geo.CityIndex("Mountain View"), salt, 53)
		r := resolver.New(resolver.Config{
			Addr: addr, Transport: net, Now: net.Clock().Now,
			Directory: dir, Profile: profile, Seed: int64(salt),
		})
		net.Register(addr, r)
		return r
	}
	client := world.AddrInCity(geo.CityIndex("Sydney"), 7, 10)
	clientLoc, _ := world.Locate(client)

	fetch := func(label string, via netip.Addr) {
		q := dnswire.NewQuery(1, "video.cdn.example.net.", dnswire.TypeA)
		q.EDNS = dnswire.NewEDNS()
		resp, _, err := net.Exchange(client, via, q)
		if err != nil {
			log.Fatal(err)
		}
		if len(resp.Answers) == 0 {
			log.Fatalf("%s: no answer", label)
		}
		edge := resp.Answers[0].Data.(*dnswire.ARData).Addr
		edgeLoc, _ := world.Locate(edge)
		rtt := time.Duration(geo.RTTMillis(clientLoc, edgeLoc) * float64(time.Millisecond))
		fmt.Printf("%-34s → edge %-15s in %-13s RTT %v\n",
			label, edge, edgeLoc.City, rtt.Round(time.Millisecond))
	}

	// 1. Without ECS: the CDN maps by the resolver's location.
	fetch("resolver without ECS", newResolver(resolver.NonECSProfile(), 11).Addr())

	// 2. With ECS: the CDN maps by the client's subnet.
	fetch("resolver with ECS", newResolver(resolver.GoogleLikeProfile(), 12).Addr())

	// 3. With ECS but behind a hidden resolver in Rome: the egress
	// derives the prefix from the hidden hop, and the client is mapped
	// to Europe (§8.2's pathology).
	egress := newResolver(resolver.GoogleLikeProfile(), 13)
	hiddenAddr := world.AddrInCity(geo.CityIndex("Rome"), 14, 99)
	net.Register(hiddenAddr, &resolver.Forwarder{
		Addr: hiddenAddr, Upstream: egress.Addr(), Transport: net, Open: true,
	})
	fetch("ECS via hidden resolver in Rome", hiddenAddr)
}
