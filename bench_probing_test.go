package ecsdns

import (
	"net/netip"
	"time"

	"ecsdns/internal/authority"
	"ecsdns/internal/dnswire"
	"ecsdns/internal/ecsopt"
	"ecsdns/internal/geo"
	"ecsdns/internal/netem"
	"ecsdns/internal/resolver"
)

type resolverProfile = resolver.Profile

func profAlways() resolverProfile { return resolver.GoogleLikeProfile() }

func profLoopback() resolverProfile {
	p := resolver.LoopbackProberProfile()
	p.ProbeNames = nil // probe with whatever name arrives
	return p
}

func profOwnAddr() resolverProfile {
	p := resolver.LoopbackProberProfile()
	p.ProbeWithLoopback = false
	p.ProbeWithOwnAddr = true
	p.ProbeNames = nil
	return p
}

// measureLeak drives one resolver with the given profile against a
// non-ECS authority and counts upstream queries that carried real client
// address bits.
func measureLeak(profile resolver.Profile) (leaked, total int) {
	world := geo.Build(geo.Config{Seed: 5, NumASes: 80, BlocksPerAS: 1})
	net := netem.New(world)
	authAddr := world.AddrInCity(0, 1, 53)
	auth := authority.NewServer(authority.Config{
		Addr: authAddr,
		// ECS disabled: a non-adopting authority, so every conveyed
		// client prefix is a pointless privacy loss.
		ECSEnabled: false,
		Now:        net.Clock().Now,
	})
	z := authority.NewZone("probe.example.", 20)
	z.SetWildcard(dnswire.TypeA, &dnswire.ARData{Addr: netip.MustParseAddr("192.0.2.1")})
	auth.AddZone(z)
	auth.SetLog(func(r authority.LogRecord) {
		total++
		if r.QueryHasECS && r.QueryECS.IsRoutable() &&
			r.QueryECS.Addr != ecsopt.MaskAddr(resolverSelf, 24) {
			leaked++
		}
	})
	net.Register(authAddr, auth)

	dir := resolver.NewDirectory()
	dir.Add("probe.example.", authAddr)
	res := resolver.New(resolver.Config{
		Addr: resolverSelf, Transport: net, Now: net.Clock().Now,
		Directory: dir, Profile: profile, Seed: 1,
	})
	net.Register(resolverSelf, res)

	client := world.AddrInCity(2, 3, 10)
	for i := 0; i < 30; i++ {
		name := dnswire.Name(rune('a'+i%26)) + "x.probe.example."
		q := dnswire.NewQuery(uint16(i+1), dnswire.MustParseName(string(name)), dnswire.TypeA)
		q.EDNS = dnswire.NewEDNS()
		net.Exchange(client, resolverSelf, q) //nolint:errcheck
		net.Clock().Advance(30 * time.Second)
	}
	return leaked, total
}

var resolverSelf = netip.MustParseAddr("1.0.0.53")
